#include "gateway/protocol.hpp"

#include <set>

namespace watz::gateway {

namespace {

void put_string(Bytes& out, std::string_view s) {
  write_uleb(out, s.size());
  append(out, to_bytes(s));
}

Result<std::string> read_string(ByteReader& r) {
  auto len = r.read_uleb32();
  if (!len.ok()) return Result<std::string>::err(len.error());
  auto raw = r.read_bytes(*len);
  if (!raw.ok()) return Result<std::string>::err(raw.error());
  return std::string(raw->begin(), raw->end());
}

void put_blob(Bytes& out, ByteView blob) {
  write_uleb(out, blob.size());
  append(out, blob);
}

Result<Bytes> read_blob(ByteReader& r) {
  auto len = r.read_uleb32();
  if (!len.ok()) return Result<Bytes>::err(len.error());
  auto raw = r.read_bytes(*len);
  if (!raw.ok()) return Result<Bytes>::err(raw.error());
  return Bytes(raw->begin(), raw->end());
}

Result<std::uint64_t> read_u64(ByteReader& r) {
  auto raw = r.read_bytes(8);
  if (!raw.ok()) return Result<std::uint64_t>::err(raw.error());
  return get_u64le(raw->data());
}

void put_digest(Bytes& out, const crypto::Sha256Digest& d) { append(out, d); }

Result<crypto::Sha256Digest> read_digest(ByteReader& r) {
  auto raw = r.read_bytes(crypto::kSha256DigestSize);
  if (!raw.ok()) return Result<crypto::Sha256Digest>::err(raw.error());
  crypto::Sha256Digest d;
  std::copy(raw->begin(), raw->end(), d.begin());
  return d;
}

void put_values(Bytes& out, const std::vector<wasm::Value>& values) {
  write_uleb(out, values.size());
  for (const wasm::Value& v : values) {
    out.push_back(static_cast<std::uint8_t>(v.type));
    put_u64le(out, v.bits);
  }
}

Result<std::vector<wasm::Value>> read_values(ByteReader& r) {
  using Values = std::vector<wasm::Value>;
  auto count = r.read_uleb32();
  if (!count.ok()) return Result<Values>::err(count.error());
  // Each value occupies 9 bytes on the wire; a count that cannot possibly
  // fit the remaining frame is malformed (and must not drive a reserve).
  if (*count > r.remaining() / 9)
    return Result<Values>::err("gateway: value count exceeds frame");
  Values values;
  values.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto type = r.read_u8();
    if (!type.ok()) return Result<Values>::err(type.error());
    auto bits = read_u64(r);
    if (!bits.ok()) return Result<Values>::err(bits.error());
    values.push_back(wasm::Value{static_cast<wasm::ValType>(*type), *bits});
  }
  return values;
}

Result<ByteReader> open_request(ByteView data, Op expected) {
  ByteReader r(data);
  auto op = r.read_u8();
  if (!op.ok()) return Result<ByteReader>::err(op.error());
  if (*op != static_cast<std::uint8_t>(expected))
    return Result<ByteReader>::err("gateway: unexpected opcode");
  return r;
}

}  // namespace

Result<Op> peek_op(ByteView request) {
  if (request.empty()) return Result<Op>::err("gateway: empty request");
  const std::uint8_t op = request[0];
  if (op < static_cast<std::uint8_t>(Op::Attach) ||
      op > static_cast<std::uint8_t>(Op::InvokeBatch))
    return Result<Op>::err("gateway: unknown opcode " + std::to_string(op));
  return static_cast<Op>(op);
}

Bytes ok_envelope(ByteView payload) {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(0x00);
  append(out, payload);
  return out;
}

Bytes err_envelope(const std::string& message) {
  Bytes out;
  out.push_back(0x01);
  put_string(out, message);
  return out;
}

Bytes busy_envelope(const std::string& message) {
  Bytes out;
  out.push_back(0x02);
  put_string(out, message);
  return out;
}

bool is_queue_full(const std::string& error) {
  return error.rfind(kQueueFullPrefix, 0) == 0;
}

Result<Bytes> open_envelope(ByteView response) {
  ByteReader r(response);
  auto status = r.read_u8();
  if (!status.ok()) return Result<Bytes>::err(status.error());
  if (*status == 0x00)
    return Bytes(response.begin() + 1, response.end());
  auto message = read_string(r);
  if (!message.ok()) return Result<Bytes>::err(message.error());
  // Prefix the busy status for is_queue_full(), unless the producer's
  // message already carries it.
  if (*status == 0x02 && !is_queue_full(*message))
    return Result<Bytes>::err(std::string(kQueueFullPrefix) + ": " + *message);
  return Result<Bytes>::err(*message);
}

// -- Attach ------------------------------------------------------------------

Bytes AttachRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Attach));
  put_string(out, client);
  return out;
}

Result<AttachRequest> AttachRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Attach);
  if (!r.ok()) return Result<AttachRequest>::err(r.error());
  auto client = read_string(*r);
  if (!client.ok()) return Result<AttachRequest>::err(client.error());
  return AttachRequest{std::move(*client)};
}

Bytes AttachResponse::encode() const {
  Bytes out;
  put_u64le(out, session_id);
  put_u32le(out, devices_attested);
  put_u32le(out, ra_exchanges);
  return out;
}

Result<AttachResponse> AttachResponse::decode(ByteView data) {
  if (data.size() != 16) return Result<AttachResponse>::err("gateway: bad attach response");
  AttachResponse resp;
  resp.session_id = get_u64le(data.data());
  resp.devices_attested = get_u32le(data.data() + 8);
  resp.ra_exchanges = get_u32le(data.data() + 12);
  return resp;
}

// -- AttachBatch -------------------------------------------------------------

Bytes AttachBatchRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::AttachBatch));
  write_uleb(out, clients.size());
  for (const std::string& client : clients) put_string(out, client);
  return out;
}

Result<AttachBatchRequest> AttachBatchRequest::decode(ByteView data) {
  using R = Result<AttachBatchRequest>;
  auto r = open_request(data, Op::AttachBatch);
  if (!r.ok()) return R::err(r.error());
  auto count = r->read_uleb32();
  if (!count.ok()) return R::err(count.error());
  if (*count == 0) return R::err("gateway: empty attach batch");
  if (*count > kMaxAttachBatch) return R::err("gateway: attach batch too large");
  // Every client name costs at least its 1-byte length prefix; a count the
  // remaining frame cannot hold is malformed (and must not drive a reserve).
  if (*count > r->remaining()) return R::err("gateway: attach count exceeds frame");
  AttachBatchRequest req;
  req.clients.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto client = read_string(*r);
    if (!client.ok()) return R::err("gateway: attach batch entry " +
                                    std::to_string(i) + ": " + client.error());
    req.clients.push_back(std::move(*client));
  }
  // Count and payload must agree exactly — trailing bytes are as malformed
  // as a short frame.
  if (!r->at_end()) return R::err("gateway: trailing bytes after attach batch");
  return req;
}

Bytes AttachBatchResponse::encode() const {
  Bytes out;
  put_u32le(out, ra_fabric_exchanges);
  write_uleb(out, results.size());
  for (const AttachBatchResult& result : results) {
    put_u64le(out, result.session_id);
    put_u32le(out, result.devices_attested);
    put_u32le(out, result.ra_exchanges);
    put_string(out, result.error);
  }
  return out;
}

Result<AttachBatchResponse> AttachBatchResponse::decode(ByteView data) {
  using R = Result<AttachBatchResponse>;
  ByteReader r(data);
  AttachBatchResponse resp;
  auto fabric = r.read_u32le();
  if (!fabric.ok()) return R::err(fabric.error());
  resp.ra_fabric_exchanges = *fabric;
  auto count = r.read_uleb32();
  if (!count.ok()) return R::err(count.error());
  if (*count > kMaxAttachBatch) return R::err("gateway: attach batch too large");
  resp.results.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    AttachBatchResult result;
    auto session = read_u64(r);
    if (!session.ok()) return R::err(session.error());
    result.session_id = *session;
    auto attested = r.read_u32le();
    if (!attested.ok()) return R::err(attested.error());
    result.devices_attested = *attested;
    auto ra = r.read_u32le();
    if (!ra.ok()) return R::err(ra.error());
    result.ra_exchanges = *ra;
    auto error = read_string(r);
    if (!error.ok()) return R::err(error.error());
    result.error = std::move(*error);
    resp.results.push_back(std::move(result));
  }
  return resp;
}

// -- LoadModule --------------------------------------------------------------

Bytes LoadModuleRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::LoadModule));
  put_u64le(out, session_id);
  put_blob(out, binary);
  return out;
}

Result<LoadModuleRequest> LoadModuleRequest::decode(ByteView data) {
  auto r = open_request(data, Op::LoadModule);
  if (!r.ok()) return Result<LoadModuleRequest>::err(r.error());
  LoadModuleRequest req;
  auto session = read_u64(*r);
  if (!session.ok()) return Result<LoadModuleRequest>::err(session.error());
  req.session_id = *session;
  auto binary = read_blob(*r);
  if (!binary.ok()) return Result<LoadModuleRequest>::err(binary.error());
  req.binary = std::move(*binary);
  return req;
}

Bytes LoadModuleResponse::encode() const {
  Bytes out;
  put_digest(out, measurement);
  out.push_back(already_registered ? 1 : 0);
  return out;
}

Result<LoadModuleResponse> LoadModuleResponse::decode(ByteView data) {
  ByteReader r(data);
  LoadModuleResponse resp;
  auto digest = read_digest(r);
  if (!digest.ok()) return Result<LoadModuleResponse>::err(digest.error());
  resp.measurement = *digest;
  auto flag = r.read_u8();
  if (!flag.ok()) return Result<LoadModuleResponse>::err(flag.error());
  resp.already_registered = *flag != 0;
  return resp;
}

// -- Invoke ------------------------------------------------------------------

void InvokeRequest::encode_fields(Bytes& out) const {
  put_u64le(out, session_id);
  put_digest(out, measurement);
  put_string(out, entry);
  put_values(out, args);
  put_u64le(out, heap_bytes);
  // Optional trace field: presence flag, then the 8-byte id. Untraced
  // requests pay one byte.
  if (trace_id != 0) {
    out.push_back(1);
    put_u64le(out, trace_id);
  } else {
    out.push_back(0);
  }
}

Result<InvokeRequest> InvokeRequest::decode_fields(ByteReader& r) {
  InvokeRequest req;
  auto session = read_u64(r);
  if (!session.ok()) return Result<InvokeRequest>::err(session.error());
  req.session_id = *session;
  auto digest = read_digest(r);
  if (!digest.ok()) return Result<InvokeRequest>::err(digest.error());
  req.measurement = *digest;
  auto entry = read_string(r);
  if (!entry.ok()) return Result<InvokeRequest>::err(entry.error());
  req.entry = std::move(*entry);
  auto args = read_values(r);
  if (!args.ok()) return Result<InvokeRequest>::err(args.error());
  req.args = std::move(*args);
  auto heap = read_u64(r);
  if (!heap.ok()) return Result<InvokeRequest>::err(heap.error());
  req.heap_bytes = *heap;
  auto has_trace = r.read_u8();
  if (!has_trace.ok()) return Result<InvokeRequest>::err(has_trace.error());
  if (*has_trace > 1)
    return Result<InvokeRequest>::err("gateway: bad trace flag");
  if (*has_trace == 1) {
    auto trace = read_u64(r);
    if (!trace.ok()) return Result<InvokeRequest>::err(trace.error());
    if (*trace == 0)
      return Result<InvokeRequest>::err("gateway: zero trace id");
    req.trace_id = *trace;
  }
  return req;
}

Bytes InvokeRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Invoke));
  encode_fields(out);
  return out;
}

Result<InvokeRequest> InvokeRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Invoke);
  if (!r.ok()) return Result<InvokeRequest>::err(r.error());
  return decode_fields(*r);
}

Bytes InvokeResponse::encode() const {
  Bytes out;
  put_values(out, results);
  put_string(out, device);
  out.push_back(module_cache_hit ? 1 : 0);
  out.push_back(pool_hit ? 1 : 0);
  put_u64le(out, launch_ns);
  put_u64le(out, invoke_ns);
  put_u32le(out, ra_exchanges);
  put_u64le(out, queue_delay_ns);
  put_u64le(out, trace_id);
  return out;
}

Result<InvokeResponse> InvokeResponse::decode(ByteView data) {
  ByteReader r(data);
  InvokeResponse resp;
  auto results = read_values(r);
  if (!results.ok()) return Result<InvokeResponse>::err(results.error());
  resp.results = std::move(*results);
  auto device = read_string(r);
  if (!device.ok()) return Result<InvokeResponse>::err(device.error());
  resp.device = std::move(*device);
  auto hit = r.read_u8();
  if (!hit.ok()) return Result<InvokeResponse>::err(hit.error());
  resp.module_cache_hit = *hit != 0;
  auto pool = r.read_u8();
  if (!pool.ok()) return Result<InvokeResponse>::err(pool.error());
  resp.pool_hit = *pool != 0;
  auto launch = read_u64(r);
  if (!launch.ok()) return Result<InvokeResponse>::err(launch.error());
  resp.launch_ns = *launch;
  auto invoke = read_u64(r);
  if (!invoke.ok()) return Result<InvokeResponse>::err(invoke.error());
  resp.invoke_ns = *invoke;
  auto ra = r.read_u32le();
  if (!ra.ok()) return Result<InvokeResponse>::err(ra.error());
  resp.ra_exchanges = *ra;
  auto delay = read_u64(r);
  if (!delay.ok()) return Result<InvokeResponse>::err(delay.error());
  resp.queue_delay_ns = *delay;
  auto trace = read_u64(r);
  if (!trace.ok()) return Result<InvokeResponse>::err(trace.error());
  resp.trace_id = *trace;
  return resp;
}

// -- InvokeBatch -------------------------------------------------------------

Bytes InvokeBatchRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::InvokeBatch));
  write_uleb(out, lanes.size());
  for (const Lane& lane : lanes) {
    write_uleb(out, lane.lane);
    Bytes fields;
    lane.invoke.encode_fields(fields);
    put_blob(out, fields);
  }
  return out;
}

Result<InvokeBatchRequest> InvokeBatchRequest::decode(ByteView data) {
  using R = Result<InvokeBatchRequest>;
  auto r = open_request(data, Op::InvokeBatch);
  if (!r.ok()) return R::err(r.error());
  auto count = r->read_uleb32();
  if (!count.ok()) return R::err(count.error());
  if (*count == 0) return R::err("gateway: empty invoke batch");
  if (*count > kMaxInvokeBatch) return R::err("gateway: invoke batch too large");
  // Every lane costs at least its id + length prefix; a count the
  // remaining frame cannot hold is malformed (and must not drive a reserve).
  if (*count > r->remaining()) return R::err("gateway: invoke count exceeds frame");
  InvokeBatchRequest req;
  req.lanes.reserve(*count);
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < *count; ++i) {
    Lane lane;
    auto id = r->read_uleb32();
    if (!id.ok()) return R::err(id.error());
    lane.lane = *id;
    // A duplicate lane would make the per-lane results ambiguous; reject
    // the whole frame, exactly like the RA batch frames do.
    if (!seen.insert(lane.lane).second)
      return R::err("gateway: duplicate invoke batch lane " +
                    std::to_string(lane.lane));
    auto payload = read_blob(*r);
    if (!payload.ok()) return R::err("gateway: invoke batch lane " +
                                     std::to_string(lane.lane) + ": " +
                                     payload.error());
    ByteReader fields(*payload);
    auto invoke = InvokeRequest::decode_fields(fields);
    if (!invoke.ok()) return R::err("gateway: invoke batch lane " +
                                    std::to_string(lane.lane) + ": " +
                                    invoke.error());
    // The lane's length prefix and its payload must agree exactly.
    if (!fields.at_end())
      return R::err("gateway: invoke batch lane " + std::to_string(lane.lane) +
                    ": trailing bytes");
    lane.invoke = std::move(*invoke);
    req.lanes.push_back(std::move(lane));
  }
  // Count and payload must agree exactly — trailing bytes are as malformed
  // as a short frame.
  if (!r->at_end()) return R::err("gateway: trailing bytes after invoke batch");
  return req;
}

Bytes InvokeBatchResponse::encode() const {
  Bytes out;
  write_uleb(out, results.size());
  for (const InvokeBatchResult& result : results) {
    write_uleb(out, result.lane);
    put_string(out, result.error);
    if (result.ok()) put_blob(out, result.result.encode());
  }
  return out;
}

Result<InvokeBatchResponse> InvokeBatchResponse::decode(ByteView data) {
  using R = Result<InvokeBatchResponse>;
  ByteReader r(data);
  auto count = r.read_uleb32();
  if (!count.ok()) return R::err(count.error());
  if (*count > kMaxInvokeBatch) return R::err("gateway: invoke batch too large");
  if (*count > r.remaining())
    return R::err("gateway: invoke count exceeds frame");
  InvokeBatchResponse resp;
  resp.results.reserve(*count);
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < *count; ++i) {
    InvokeBatchResult result;
    auto id = r.read_uleb32();
    if (!id.ok()) return R::err(id.error());
    result.lane = *id;
    if (!seen.insert(result.lane).second)
      return R::err("gateway: duplicate invoke batch lane " +
                    std::to_string(result.lane));
    auto error = read_string(r);
    if (!error.ok()) return R::err(error.error());
    result.error = std::move(*error);
    if (result.error.empty()) {
      auto payload = read_blob(r);
      if (!payload.ok()) return R::err(payload.error());
      auto decoded = InvokeResponse::decode(*payload);
      if (!decoded.ok()) return R::err(decoded.error());
      result.result = std::move(*decoded);
    }
    resp.results.push_back(std::move(result));
  }
  if (!r.at_end()) return R::err("gateway: trailing bytes after invoke batch");
  return resp;
}

// -- Submit / Poll -----------------------------------------------------------

Bytes SubmitRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Submit));
  invoke.encode_fields(out);
  return out;
}

Result<SubmitRequest> SubmitRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Submit);
  if (!r.ok()) return Result<SubmitRequest>::err(r.error());
  auto invoke = InvokeRequest::decode_fields(*r);
  if (!invoke.ok()) return Result<SubmitRequest>::err(invoke.error());
  return SubmitRequest{std::move(*invoke)};
}

Bytes SubmitResponse::encode() const {
  Bytes out;
  put_u64le(out, ticket);
  return out;
}

Result<SubmitResponse> SubmitResponse::decode(ByteView data) {
  if (data.size() != 8) return Result<SubmitResponse>::err("gateway: bad submit response");
  return SubmitResponse{get_u64le(data.data())};
}

Bytes PollRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Poll));
  put_u64le(out, session_id);
  put_u64le(out, ticket);
  return out;
}

Result<PollRequest> PollRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Poll);
  if (!r.ok()) return Result<PollRequest>::err(r.error());
  PollRequest req;
  auto session = read_u64(*r);
  if (!session.ok()) return Result<PollRequest>::err(session.error());
  req.session_id = *session;
  auto ticket = read_u64(*r);
  if (!ticket.ok()) return Result<PollRequest>::err(ticket.error());
  req.ticket = *ticket;
  return req;
}

Bytes PollResponse::encode() const {
  Bytes out;
  out.push_back(ready ? 1 : 0);
  put_string(out, error);
  // The result rides as the trailing payload, present only on success.
  if (ready && error.empty()) append(out, result.encode());
  return out;
}

Result<PollResponse> PollResponse::decode(ByteView data) {
  ByteReader r(data);
  PollResponse resp;
  auto ready = r.read_u8();
  if (!ready.ok()) return Result<PollResponse>::err(ready.error());
  resp.ready = *ready != 0;
  auto error = read_string(r);
  if (!error.ok()) return Result<PollResponse>::err(error.error());
  resp.error = std::move(*error);
  if (resp.ready && resp.error.empty()) {
    auto rest = r.read_bytes(r.remaining());
    if (!rest.ok()) return Result<PollResponse>::err(rest.error());
    auto result = InvokeResponse::decode(*rest);
    if (!result.ok()) return Result<PollResponse>::err(result.error());
    resp.result = std::move(*result);
  }
  return resp;
}

// -- Stats -------------------------------------------------------------------

Bytes StatsRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Stats));
  put_u64le(out, session_id);
  out.push_back(detail ? 1 : 0);
  return out;
}

Result<StatsRequest> StatsRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Stats);
  if (!r.ok()) return Result<StatsRequest>::err(r.error());
  auto session = read_u64(*r);
  if (!session.ok()) return Result<StatsRequest>::err(session.error());
  auto detail = r->read_u8();
  if (!detail.ok()) return Result<StatsRequest>::err(detail.error());
  if (*detail > 1) return Result<StatsRequest>::err("gateway: bad detail flag");
  return StatsRequest{*session, *detail != 0};
}

Bytes GatewayStats::encode() const {
  Bytes out;
  put_u64le(out, sessions_active);
  put_u64le(out, sessions_total);
  put_u64le(out, handshakes_run);
  put_u64le(out, handshakes_reused);
  put_u64le(out, modules_registered);
  put_u64le(out, invocations);
  put_u64le(out, queue_full_rejections);
  put_u64le(out, deduped_lanes);
  put_u64le(out, evidence_renewals);
  put_u64le(out, tier_up_compiles);
  put_u64le(out, native_entries);
  put_u64le(out, jit_fallback_ops);
  put_u64le(out, jit_fallback_float);
  put_u64le(out, jit_fallback_conv);
  put_u64le(out, jit_fallback_call);
  put_u64le(out, jit_fallback_other);
  put_u64le(out, invoke_memo_hits);
  put_u64le(out, migrations);
  put_u64le(out, prewarm_prepares);
  put_u64le(out, queue_delay_p50_ns);
  put_u64le(out, queue_delay_p90_ns);
  put_u64le(out, queue_delay_p99_ns);
  for (const StageStats* stage : {&stage_queue, &stage_exec, &stage_tee_entry,
                                  &stage_ra, &stage_jit_compile}) {
    put_u64le(out, stage->count);
    put_u64le(out, stage->p50_ns);
    put_u64le(out, stage->p90_ns);
    put_u64le(out, stage->p99_ns);
  }
  write_uleb(out, devices.size());
  for (const DeviceStats& d : devices) {
    put_string(out, d.hostname);
    put_u64le(out, d.boot_count);
    put_u64le(out, d.invocations);
    put_u64le(out, d.busy_ns);
    put_u32le(out, d.queue_depth_peak);
    put_u64le(out, d.secure_heap_in_use);
    put_u64le(out, d.cache_hits);
    put_u64le(out, d.cache_misses);
    put_u64le(out, d.cache_evictions);
    put_u64le(out, d.pool_hits);
    put_u64le(out, d.cache_prewarms);
    put_u64le(out, d.queue_delay_p50_ns);
    put_u64le(out, d.queue_delay_p90_ns);
    put_u64le(out, d.queue_delay_p99_ns);
    put_u32le(out, d.pool_slots);
    write_uleb(out, d.slots.size());
    for (const SlotStats& s : d.slots) {
      put_u32le(out, s.inflight);
      put_u32le(out, s.queue_depth_peak);
      put_u64le(out, s.invocations);
      put_u64le(out, s.busy_ns);
      put_u64le(out, s.queue_full_rejections);
    }
    write_uleb(out, d.modules.size());
    for (const ModuleTierStats& m : d.modules) {
      put_digest(out, m.measurement);
      out.push_back(m.mode);
      put_u32le(out, m.functions);
      put_u32le(out, m.native_functions);
      put_u32le(out, m.hot_threshold);
      put_u64le(out, m.calls);
    }
  }
  write_uleb(out, ra_shards.size());
  for (const RaShardStats& s : ra_shards) {
    put_u64le(out, s.msg0s);
    put_u64le(out, s.handshakes);
    put_u64le(out, s.rejects);
    put_u64le(out, s.key_rotations);
  }
  write_uleb(out, slow_invokes.size());
  for (const SlowInvoke& s : slow_invokes) {
    put_u64le(out, s.trace_id);
    put_u64le(out, s.total_ns);
    put_u64le(out, s.queue_ns);
    put_u64le(out, s.prepare_ns);
    put_u64le(out, s.tee_ns);
    put_u64le(out, s.exec_ns);
    put_u64le(out, s.ra_ns);
    put_string(out, s.device);
    put_string(out, s.entry);
  }
  return out;
}

Result<GatewayStats> GatewayStats::decode(ByteView data) {
  ByteReader r(data);
  GatewayStats stats;
  for (std::uint64_t* field :
       {&stats.sessions_active, &stats.sessions_total, &stats.handshakes_run,
        &stats.handshakes_reused, &stats.modules_registered, &stats.invocations,
        &stats.queue_full_rejections, &stats.deduped_lanes,
        &stats.evidence_renewals, &stats.tier_up_compiles,
        &stats.native_entries, &stats.jit_fallback_ops,
        &stats.jit_fallback_float, &stats.jit_fallback_conv,
        &stats.jit_fallback_call, &stats.jit_fallback_other,
        &stats.invoke_memo_hits, &stats.migrations, &stats.prewarm_prepares,
        &stats.queue_delay_p50_ns, &stats.queue_delay_p90_ns,
        &stats.queue_delay_p99_ns}) {
    auto v = read_u64(r);
    if (!v.ok()) return Result<GatewayStats>::err(v.error());
    *field = *v;
  }
  for (StageStats* stage :
       {&stats.stage_queue, &stats.stage_exec, &stats.stage_tee_entry,
        &stats.stage_ra, &stats.stage_jit_compile}) {
    for (std::uint64_t* field :
         {&stage->count, &stage->p50_ns, &stage->p90_ns, &stage->p99_ns}) {
      auto v = read_u64(r);
      if (!v.ok()) return Result<GatewayStats>::err(v.error());
      *field = *v;
    }
  }
  auto count = r.read_uleb32();
  if (!count.ok()) return Result<GatewayStats>::err(count.error());
  for (std::uint32_t i = 0; i < *count; ++i) {
    DeviceStats d;
    auto hostname = read_string(r);
    if (!hostname.ok()) return Result<GatewayStats>::err(hostname.error());
    d.hostname = std::move(*hostname);
    auto boot = read_u64(r);
    if (!boot.ok()) return Result<GatewayStats>::err(boot.error());
    d.boot_count = *boot;
    auto inv = read_u64(r);
    if (!inv.ok()) return Result<GatewayStats>::err(inv.error());
    d.invocations = *inv;
    auto busy = read_u64(r);
    if (!busy.ok()) return Result<GatewayStats>::err(busy.error());
    d.busy_ns = *busy;
    auto peak = r.read_u32le();
    if (!peak.ok()) return Result<GatewayStats>::err(peak.error());
    d.queue_depth_peak = *peak;
    for (std::uint64_t* field :
         {&d.secure_heap_in_use, &d.cache_hits, &d.cache_misses,
          &d.cache_evictions, &d.pool_hits, &d.cache_prewarms,
          &d.queue_delay_p50_ns, &d.queue_delay_p90_ns,
          &d.queue_delay_p99_ns}) {
      auto v = read_u64(r);
      if (!v.ok()) return Result<GatewayStats>::err(v.error());
      *field = *v;
    }
    auto pool_slots = r.read_u32le();
    if (!pool_slots.ok()) return Result<GatewayStats>::err(pool_slots.error());
    d.pool_slots = *pool_slots;
    auto slot_count = r.read_uleb32();
    if (!slot_count.ok()) return Result<GatewayStats>::err(slot_count.error());
    // Each slot entry occupies 32 bytes; a count the frame cannot hold is
    // malformed (and must not drive a reserve).
    if (*slot_count > r.remaining() / 32)
      return Result<GatewayStats>::err("gateway: slot count exceeds frame");
    d.slots.reserve(*slot_count);
    for (std::uint32_t s = 0; s < *slot_count; ++s) {
      SlotStats slot;
      auto inflight = r.read_u32le();
      if (!inflight.ok()) return Result<GatewayStats>::err(inflight.error());
      slot.inflight = *inflight;
      auto peak = r.read_u32le();
      if (!peak.ok()) return Result<GatewayStats>::err(peak.error());
      slot.queue_depth_peak = *peak;
      auto inv = read_u64(r);
      if (!inv.ok()) return Result<GatewayStats>::err(inv.error());
      slot.invocations = *inv;
      auto busy = read_u64(r);
      if (!busy.ok()) return Result<GatewayStats>::err(busy.error());
      slot.busy_ns = *busy;
      auto rejects = read_u64(r);
      if (!rejects.ok()) return Result<GatewayStats>::err(rejects.error());
      slot.queue_full_rejections = *rejects;
      d.slots.push_back(slot);
    }
    auto module_count = r.read_uleb32();
    if (!module_count.ok()) return Result<GatewayStats>::err(module_count.error());
    // Each module-tier entry occupies 53 bytes (digest + mode + 3 u32 +
    // u64); a count the frame cannot hold is malformed.
    if (*module_count > r.remaining() / 53)
      return Result<GatewayStats>::err("gateway: module count exceeds frame");
    d.modules.reserve(*module_count);
    for (std::uint32_t m = 0; m < *module_count; ++m) {
      ModuleTierStats mod;
      auto digest = read_digest(r);
      if (!digest.ok()) return Result<GatewayStats>::err(digest.error());
      mod.measurement = *digest;
      auto mode = r.read_u8();
      if (!mode.ok()) return Result<GatewayStats>::err(mode.error());
      mod.mode = *mode;
      for (std::uint32_t* field :
           {&mod.functions, &mod.native_functions, &mod.hot_threshold}) {
        auto v = r.read_u32le();
        if (!v.ok()) return Result<GatewayStats>::err(v.error());
        *field = *v;
      }
      auto calls = read_u64(r);
      if (!calls.ok()) return Result<GatewayStats>::err(calls.error());
      mod.calls = *calls;
      d.modules.push_back(mod);
    }
    stats.devices.push_back(std::move(d));
  }
  auto shard_count = r.read_uleb32();
  if (!shard_count.ok()) return Result<GatewayStats>::err(shard_count.error());
  for (std::uint32_t i = 0; i < *shard_count; ++i) {
    RaShardStats s;
    for (std::uint64_t* field : {&s.msg0s, &s.handshakes, &s.rejects,
                                 &s.key_rotations}) {
      auto v = read_u64(r);
      if (!v.ok()) return Result<GatewayStats>::err(v.error());
      *field = *v;
    }
    stats.ra_shards.push_back(s);
  }
  auto slow_count = r.read_uleb32();
  if (!slow_count.ok()) return Result<GatewayStats>::err(slow_count.error());
  // Each slow-invoke entry occupies at least 58 bytes (7 u64s + two 1-byte
  // length prefixes); a count the frame cannot hold is malformed.
  if (*slow_count > r.remaining() / 58)
    return Result<GatewayStats>::err("gateway: slow-invoke count exceeds frame");
  stats.slow_invokes.reserve(*slow_count);
  for (std::uint32_t i = 0; i < *slow_count; ++i) {
    SlowInvoke s;
    for (std::uint64_t* field : {&s.trace_id, &s.total_ns, &s.queue_ns,
                                 &s.prepare_ns, &s.tee_ns, &s.exec_ns,
                                 &s.ra_ns}) {
      auto v = read_u64(r);
      if (!v.ok()) return Result<GatewayStats>::err(v.error());
      *field = *v;
    }
    auto device = read_string(r);
    if (!device.ok()) return Result<GatewayStats>::err(device.error());
    s.device = std::move(*device);
    auto entry = read_string(r);
    if (!entry.ok()) return Result<GatewayStats>::err(entry.error());
    s.entry = std::move(*entry);
    stats.slow_invokes.push_back(std::move(s));
  }
  return stats;
}

// -- Detach ------------------------------------------------------------------

Bytes DetachRequest::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(Op::Detach));
  put_u64le(out, session_id);
  return out;
}

Result<DetachRequest> DetachRequest::decode(ByteView data) {
  auto r = open_request(data, Op::Detach);
  if (!r.ok()) return Result<DetachRequest>::err(r.error());
  auto session = read_u64(*r);
  if (!session.ok()) return Result<DetachRequest>::err(session.error());
  return DetachRequest{*session};
}

}  // namespace watz::gateway
