#include "gateway/session_manager.hpp"

namespace watz::gateway {

SessionPtr SessionManager::attach(std::string client, std::uint64_t now_ns) {
  auto session = std::make_shared<Session>();
  session->client = std::move(client);
  session->created_at_ns = now_ns;
  std::lock_guard<std::mutex> lock(mu_);
  session->id = next_id_++;
  sessions_[session->id] = session;
  sessions_total_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

SessionPtr SessionManager::find(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::detach(std::uint64_t session_id) {
  SessionPtr session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return false;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Queued/in-flight work holding the shared_ptr observes the flag and
  // fails instead of executing against a detached session.
  session->closed.store(true, std::memory_order_release);
  return true;
}

Result<std::uint32_t> SessionManager::ensure_attested(Session& session,
                                                      const std::string& device_name,
                                                      std::uint64_t boot_count,
                                                      std::uint64_t now_ns,
                                                      const HandshakeFn& handshake) {
  using R = Result<std::uint32_t>;
  if (session.closed.load(std::memory_order_acquire))
    return R::err("gateway: session detached");
  {
    std::lock_guard<std::mutex> lock(session.mu);
    const auto it = session.attested.find(device_name);
    if (it != session.attested.end()) {
      const DeviceAttestation& cached = it->second;
      const bool rebooted = cached.boot_count != boot_count;
      const bool expired = policy_.evidence_ttl_ns != ~0ull &&
                           now_ns - cached.attested_at_ns > policy_.evidence_ttl_ns;
      if (!rebooted && !expired) {
        handshakes_reused_.fetch_add(1, std::memory_order_relaxed);
        return std::uint32_t{0};
      }
      session.attested.erase(it);  // stale: re-prove below
    }
  }

  // The handshake crosses the fabric and drives the device's TEE; it runs
  // with no session lock held so other devices attest this session in
  // parallel. A rare duplicate handshake (two workers racing the same
  // (session, device) key) is benign: last writer wins.
  auto evidence = handshake();
  if (!evidence.ok())
    return R::err("gateway: " + device_name + " failed appraisal: " + evidence.error());
  handshakes_run_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(session.mu);
  if (session.closed.load(std::memory_order_acquire))
    return R::err("gateway: session detached");
  session.attested[device_name] =
      DeviceAttestation{std::move(*evidence), now_ns, boot_count};
  return kRaExchangesPerHandshake;
}

bool SessionManager::has_fresh(Session& session, const std::string& device_name,
                               std::uint64_t boot_count,
                               std::uint64_t now_ns) const {
  if (session.closed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(session.mu);
  const auto it = session.attested.find(device_name);
  if (it == session.attested.end()) return false;
  const DeviceAttestation& cached = it->second;
  if (cached.boot_count != boot_count) return false;
  return policy_.evidence_ttl_ns == ~0ull ||
         now_ns - cached.attested_at_ns <= policy_.evidence_ttl_ns;
}

std::vector<SessionPtr> SessionManager::renewal_candidates(
    const std::string& device_name, std::uint64_t boot_count, std::uint64_t now_ns,
    std::uint64_t age_threshold_ns) {
  // Snapshot the table first, inspect each session after releasing the
  // table lock: mu_ and session.mu never nest.
  std::vector<SessionPtr> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) all.push_back(session);
  }
  std::vector<SessionPtr> due;
  for (const SessionPtr& session : all) {
    if (session->closed.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(session->mu);
    const auto it = session->attested.find(device_name);
    if (it == session->attested.end()) continue;
    // A stale boot count is not renewable evidence — the next invoke must
    // run a full fresh handshake anyway (and will, lazily).
    if (it->second.boot_count != boot_count) continue;
    if (now_ns - it->second.attested_at_ns < age_threshold_ns) continue;
    due.push_back(session);
  }
  return due;
}

Status SessionManager::record_attestation(Session& session,
                                          const std::string& device_name,
                                          std::uint64_t boot_count,
                                          std::uint64_t now_ns,
                                          attestation::Evidence evidence) {
  std::lock_guard<std::mutex> lock(session.mu);
  if (session.closed.load(std::memory_order_acquire))
    return Status::err("gateway: session detached");
  handshakes_run_.fetch_add(1, std::memory_order_relaxed);
  session.attested[device_name] =
      DeviceAttestation{std::move(evidence), now_ns, boot_count};
  return {};
}

}  // namespace watz::gateway
