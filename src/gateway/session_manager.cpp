#include "gateway/session_manager.hpp"

namespace watz::gateway {

Session& SessionManager::attach(std::string client, std::uint64_t now_ns) {
  const std::uint64_t id = next_id_++;
  Session& session = sessions_[id];
  session.id = id;
  session.client = std::move(client);
  session.created_at_ns = now_ns;
  ++sessions_total_;
  return session;
}

Session* SessionManager::find(std::uint64_t session_id) {
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

bool SessionManager::detach(std::uint64_t session_id) {
  return sessions_.erase(session_id) > 0;
}

Result<std::uint32_t> SessionManager::ensure_attested(Session& session,
                                                      const std::string& device_name,
                                                      std::uint64_t boot_count,
                                                      std::uint64_t now_ns,
                                                      const HandshakeFn& handshake) {
  const auto it = session.attested.find(device_name);
  if (it != session.attested.end()) {
    const DeviceAttestation& cached = it->second;
    const bool rebooted = cached.boot_count != boot_count;
    const bool expired = policy_.evidence_ttl_ns != ~0ull &&
                         now_ns - cached.attested_at_ns > policy_.evidence_ttl_ns;
    if (!rebooted && !expired) {
      ++handshakes_reused_;
      return std::uint32_t{0};
    }
    session.attested.erase(it);  // stale: re-prove below
  }

  auto evidence = handshake();
  if (!evidence.ok())
    return Result<std::uint32_t>::err("gateway: " + device_name +
                                      " failed appraisal: " + evidence.error());
  ++handshakes_run_;
  session.attested[device_name] =
      DeviceAttestation{std::move(*evidence), now_ns, boot_count};
  return kRaExchangesPerHandshake;
}

}  // namespace watz::gateway
