// Wire protocol of the attested execution gateway.
//
// Clients talk to the gateway dispatcher over the fabric with framed,
// tagged requests (one byte of opcode, then opcode-specific fields; strings
// and blobs are ULEB-length-prefixed, scalars little-endian). Every
// response is an envelope: a status byte (0 = ok) followed by either the
// opcode-specific payload or an error string — so application failures
// travel in-band instead of tearing down the connection.
//
//   ATTACH      client attaches; the gateway runs the RA handshake against
//               every enrolled device and caches the verified evidence
//               under the returned session id.
//   LOAD_MODULE registers a Wasm binary; returns its SHA-256 measurement,
//               the key for every later INVOKE and for the module cache.
//   INVOKE      routes one invocation to the least-loaded device and waits
//               for the result; the response reports where it ran and what
//               the caches saved.
//   STATS       gateway-wide and per-device counters.
//   DETACH      drops the session (evidence cache included); queued work
//               for the session fails rather than executing detached.
//   SUBMIT      async INVOKE: admits the work item to a backend queue and
//               returns a ticket immediately (or QUEUE_FULL backpressure).
//   POLL        redeems a ticket: pending, or the completed result/error.
//   INVOKE_BATCH
//               N invocations in one wire exchange: the gateway fans the
//               lanes across its per-slot run queues in one admission pass
//               (least-loaded over queue depth x EWMA slot latency) and
//               answers with one result per lane — partial success with
//               per-lane failed-index reporting, mirroring ATTACH_BATCH.
//               Lanes sharing (measurement, entry, args, heap) whose
//               sessions all hold fresh evidence for the chosen device
//               execute ONCE and fan the result (GatewayStats counts the
//               riders in deduped_lanes).
//
// Backpressure travels in the envelope status byte: when every eligible
// backend run queue is at its bound, INVOKE/SUBMIT answer with status 0x02
// (QUEUE_FULL) instead of admitting unbounded work.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/leb128.hpp"
#include "common/result.hpp"
#include "crypto/sha256.hpp"
#include "wasm/types.hpp"

namespace watz::gateway {

enum class Op : std::uint8_t {
  Attach = 0x01,
  LoadModule = 0x02,
  Invoke = 0x03,
  Stats = 0x04,
  Detach = 0x05,
  Submit = 0x06,
  Poll = 0x07,
  AttachBatch = 0x08,
  InvokeBatch = 0x09,
};

/// Reads the opcode of a raw request frame.
Result<Op> peek_op(ByteView request);

// -- response envelope -------------------------------------------------------

/// Error-string prefix carried by a QUEUE_FULL envelope; clients test it
/// with is_queue_full() and retry/back off instead of treating the
/// rejection as a hard failure.
inline constexpr const char* kQueueFullPrefix = "QUEUE_FULL";

/// Wraps a successful payload: 0x00 || payload.
Bytes ok_envelope(ByteView payload);
/// Wraps an application error: 0x01 || uleb(len) || message.
Bytes err_envelope(const std::string& message);
/// Wraps a backpressure rejection: 0x02 || uleb(len) || message. The
/// request was NOT admitted; the client should retry after draining.
Bytes busy_envelope(const std::string& message);
/// Unwraps an envelope: the payload on success, the error otherwise
/// (QUEUE_FULL rejections surface as errors satisfying is_queue_full()).
Result<Bytes> open_envelope(ByteView response);
/// True when `error` came from a busy_envelope rejection.
bool is_queue_full(const std::string& error);

// -- requests / responses ----------------------------------------------------

struct AttachRequest {
  std::string client;

  Bytes encode() const;
  static Result<AttachRequest> decode(ByteView data);
};

struct AttachResponse {
  std::uint64_t session_id = 0;
  std::uint32_t devices_attested = 0;
  /// RA message exchanges spent attesting (2 per fresh handshake).
  std::uint32_t ra_exchanges = 0;

  Bytes encode() const;
  static Result<AttachResponse> decode(ByteView data);
};

/// Batched attach: N client sessions attached — and the whole fleet
/// attested for each — in one wire exchange. The gateway fans the
/// handshakes out across its backend workers, and each device amortises
/// its two RA round-trips across all N sessions via the batch frames of
/// ra/messages.hpp (N msg0s out, N msg1s back per fabric exchange).
/// Framing is strict: uleb count followed by exactly `count`
/// length-prefixed client names; a count/payload mismatch is a protocol
/// error for the whole request.
struct AttachBatchRequest {
  std::vector<std::string> clients;

  Bytes encode() const;
  static Result<AttachBatchRequest> decode(ByteView data);
};

/// Sessions the batch cannot exceed (bounds decode-side allocation).
inline constexpr std::uint32_t kMaxAttachBatch = 256;

/// Per-session outcome of a batched attach. The batch partially succeeds:
/// a session whose every device failed appraisal reports `error` (and
/// session_id 0) at its index while its siblings attach normally.
struct AttachBatchResult {
  std::uint64_t session_id = 0;
  std::uint32_t devices_attested = 0;
  /// RA protocol exchanges this session's attestations consumed (2 per
  /// fresh handshake — the protocol cost, not the wire cost).
  std::uint32_t ra_exchanges = 0;
  std::string error;  ///< non-empty when the session failed to attach

  bool ok() const noexcept { return error.empty(); }
};

struct AttachBatchResponse {
  /// Actual RA *fabric* round-trips the whole batch spent: 2 per device
  /// when every lane is fresh — independent of the session count, which is
  /// the amortisation ATTACH_BATCH exists for (unbatched attach costs
  /// 2 x devices x sessions).
  std::uint32_t ra_fabric_exchanges = 0;
  std::vector<AttachBatchResult> results;  ///< one per requested client, in order

  Bytes encode() const;
  static Result<AttachBatchResponse> decode(ByteView data);
};

struct LoadModuleRequest {
  std::uint64_t session_id = 0;
  Bytes binary;

  Bytes encode() const;
  static Result<LoadModuleRequest> decode(ByteView data);
};

struct LoadModuleResponse {
  crypto::Sha256Digest measurement{};
  bool already_registered = false;

  Bytes encode() const;
  static Result<LoadModuleResponse> decode(ByteView data);
};

struct InvokeRequest {
  std::uint64_t session_id = 0;
  crypto::Sha256Digest measurement{};
  std::string entry;
  std::vector<wasm::Value> args;
  /// Guest heap for a fresh instantiation; 0 = gateway default.
  std::uint64_t heap_bytes = 0;
  /// Optional trace identity (obs::TraceContext::trace_id). 0 = not traced;
  /// non-zero joins (or forces) a trace — the gateway instruments every
  /// stage of this lane and the response echoes the id. Batch lanes
  /// typically share one id so the fan-out renders as a single flame graph.
  std::uint64_t trace_id = 0;

  Bytes encode() const;
  static Result<InvokeRequest> decode(ByteView data);
  /// Opcode-independent field serialisation, shared with SubmitRequest.
  void encode_fields(Bytes& out) const;
  static Result<InvokeRequest> decode_fields(ByteReader& r);
};

struct InvokeResponse {
  std::vector<wasm::Value> results;
  std::string device;             ///< hostname the invocation ran on
  bool module_cache_hit = false;  ///< prepared module reused (Loading skipped)
  bool pool_hit = false;          ///< warm instance reused (launch skipped)
  std::uint64_t launch_ns = 0;    ///< instantiation cost paid for this call
  std::uint64_t invoke_ns = 0;    ///< sandbox execution cost
  /// RA message exchanges spent on this request (0 == session evidence was
  /// still fresh; the amortisation the session manager exists for).
  std::uint32_t ra_exchanges = 0;
  /// Time this request sat in the backend run queue between admission and
  /// the worker picking it up (the admission timestamp travels with the
  /// work item; STATS aggregates these into percentiles).
  std::uint64_t queue_delay_ns = 0;
  /// Echo of the trace that instrumented this invocation (0 = untraced).
  /// Clients use it to locate their lane in an exported trace file.
  std::uint64_t trace_id = 0;

  Bytes encode() const;
  static Result<InvokeResponse> decode(ByteView data);
};

/// Async submission: same fields as INVOKE, answered with a ticket instead
/// of the result. The invocation itself completes on a backend worker and
/// is redeemed with POLL.
struct SubmitRequest {
  InvokeRequest invoke;

  Bytes encode() const;
  static Result<SubmitRequest> decode(ByteView data);
};

struct SubmitResponse {
  std::uint64_t ticket = 0;

  Bytes encode() const;
  static Result<SubmitResponse> decode(ByteView data);
};

struct PollRequest {
  std::uint64_t session_id = 0;
  std::uint64_t ticket = 0;

  Bytes encode() const;
  static Result<PollRequest> decode(ByteView data);
};

struct PollResponse {
  bool ready = false;   ///< false: still queued/executing — poll again
  std::string error;    ///< non-empty when the work item failed
  InvokeResponse result;  ///< valid iff ready && error.empty()

  Bytes encode() const;
  static Result<PollResponse> decode(ByteView data);
};

/// Batched invoke: N invocations cross the wire in ONE exchange and fan
/// out across the backend run queues in one admission pass — the invoke
/// path's counterpart of ATTACH_BATCH. Framing mirrors the 0xAF RA batch
/// frames and is equally strict: uleb count, then exactly `count` lanes of
/// `uleb(lane) ‖ uleb(len) ‖ len bytes of invoke fields`. A count/payload
/// mismatch, a duplicate lane id, a lane whose payload under- or
/// over-fills its length prefix, or trailing bytes after the last lane
/// reject the WHOLE request as a protocol error before any lane is
/// admitted. Per-lane *application* failures (unknown session, QUEUE_FULL,
/// appraisal, traps) travel in the response items instead: the batch
/// partially succeeds and the client sees each failed index.
struct InvokeBatchRequest {
  struct Lane {
    std::uint32_t lane = 0;
    InvokeRequest invoke;
  };
  std::vector<Lane> lanes;

  Bytes encode() const;
  static Result<InvokeBatchRequest> decode(ByteView data);
};

/// Lanes one INVOKE_BATCH frame can carry (bounds decode-side allocation).
inline constexpr std::uint32_t kMaxInvokeBatch = 256;

/// Per-lane outcome of a batched invoke.
struct InvokeBatchResult {
  std::uint32_t lane = 0;
  std::string error;      ///< non-empty when this lane failed
  InvokeResponse result;  ///< valid iff error.empty()

  bool ok() const noexcept { return error.empty(); }
};

struct InvokeBatchResponse {
  std::vector<InvokeBatchResult> results;  ///< one per requested lane, in order

  Bytes encode() const;
  static Result<InvokeBatchResponse> decode(ByteView data);
};

struct StatsRequest {
  std::uint64_t session_id = 0;
  /// When set, the response additionally carries the slow-invoke log
  /// (GatewayStats::slow_invokes) — bulkier, so off by default.
  bool detail = false;

  Bytes encode() const;
  static Result<StatsRequest> decode(ByteView data);
};

/// Occupancy of one sandbox slot of a device's execution pool.
struct SlotStats {
  std::uint32_t inflight = 0;  ///< queued + executing at sample time
  std::uint32_t queue_depth_peak = 0;
  std::uint64_t invocations = 0;
  std::uint64_t busy_ns = 0;
  /// Admissions bounced off THIS slot's run queue (a single saturated slot
  /// is visible even when its siblings idle; spill-over admission bumps
  /// every slot it bounced off before landing).
  std::uint64_t queue_full_rejections = 0;
};

/// Per-measurement execution-tier snapshot of one device's module cache,
/// carried by STATS detail: which tier the module runs on (interp / AOT /
/// AOT + native entries) and how hot it is.
struct ModuleTierStats {
  crypto::Sha256Digest measurement{};
  std::uint8_t mode = 0;  ///< wasm::ExecMode (0 = Interp, 1 = Aot)
  std::uint32_t functions = 0;         ///< functions in the module
  std::uint32_t native_functions = 0;  ///< with an installed native entry
  std::uint32_t hot_threshold = 0;     ///< calls before tier-up queues
  std::uint64_t calls = 0;             ///< heat: sum of per-function calls
};

struct DeviceStats {
  std::string hostname;
  std::uint64_t boot_count = 0;
  std::uint64_t invocations = 0;  ///< sum over the slot pool
  std::uint64_t busy_ns = 0;      ///< sum over the slot pool
  std::uint32_t queue_depth_peak = 0;  ///< max over the slot pool
  std::uint64_t secure_heap_in_use = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t pool_hits = 0;
  /// Modules pushed into this device's cache by the background prewarm
  /// sweep (prepared ahead of any invoke, so failover lands warm — a
  /// prewarmed module's first invoke is a cache HIT, not a miss).
  std::uint64_t cache_prewarms = 0;
  /// Queueing-delay percentiles for THIS device's run queues (log2-bucket
  /// upper bounds, like the gateway-wide ones), so a slow device is not
  /// averaged away behind its fleet.
  std::uint64_t queue_delay_p50_ns = 0;
  std::uint64_t queue_delay_p90_ns = 0;
  std::uint64_t queue_delay_p99_ns = 0;
  /// Pool depth (GatewayConfig::slots_per_device at enrolment) and the
  /// per-slot occupancy breakdown, in slot order.
  std::uint32_t pool_slots = 0;
  std::vector<SlotStats> slots;
  /// Per-measurement tier state of this device's module cache (interp /
  /// AOT / native + heat). Populated only when the STATS request set its
  /// detail flag; the wire always carries the count.
  std::vector<ModuleTierStats> modules;
};

/// Per-verifier-shard counters (the RA endpoint shards handshake state by
/// session id; see ra/verifier_shard.hpp).
struct RaShardStats {
  std::uint64_t msg0s = 0;       ///< handshakes started on this shard
  std::uint64_t handshakes = 0;  ///< appraisals passed (msg3 issued)
  std::uint64_t rejects = 0;
  std::uint64_t key_rotations = 0;
};

/// Percentile summary of one pipeline stage's latency histogram
/// (obs::Histogram upper bounds; count is the sample count).
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// One entry of the slow-invoke log: an invocation whose end-to-end
/// latency exceeded GatewayConfig::slow_invoke_threshold_ns, with its
/// per-stage breakdown. Carried by STATS only when StatsRequest::detail.
struct SlowInvoke {
  std::uint64_t trace_id = 0;  ///< 0 when the invocation was unsampled
  std::uint64_t total_ns = 0;  ///< admission -> response
  std::uint64_t queue_ns = 0;
  std::uint64_t prepare_ns = 0;  ///< checkout or cold prepare
  std::uint64_t tee_ns = 0;      ///< world-switch charges (enter + leave)
  std::uint64_t exec_ns = 0;     ///< sandbox execution
  std::uint64_t ra_ns = 0;       ///< lazy handshake on the critical path
  std::string device;
  std::string entry;
};

struct GatewayStats {
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t handshakes_run = 0;
  std::uint64_t handshakes_reused = 0;
  std::uint64_t modules_registered = 0;
  std::uint64_t invocations = 0;
  /// INVOKE/SUBMIT requests bounced with QUEUE_FULL backpressure.
  std::uint64_t queue_full_rejections = 0;
  /// INVOKE_BATCH lanes that rode a sibling lane's execution instead of
  /// running (same measurement/entry/args/heap, fresh evidence): answered
  /// without entering a sandbox.
  std::uint64_t deduped_lanes = 0;
  /// Session evidences re-proved by the background renewal sweep BEFORE
  /// their TTL lapsed (the hot path never saw the staleness).
  std::uint64_t evidence_renewals = 0;
  /// Functions tiered up to native code across the fleet (one count per
  /// function per measurement: codegen is paid once fleet-wide).
  std::uint64_t tier_up_compiles = 0;
  /// Guest invocations that entered through an installed native entry
  /// instead of the AOT interpreter stream.
  std::uint64_t native_entries = 0;
  /// Opcodes executed through the JIT's per-opcode fallback thunks
  /// rather than inline native code, plus the per-class split (float
  /// arith/cmp, conversions, other numerics). Call/call_indirect helper
  /// dispatches are counted separately in jit_fallback_call and are NOT
  /// part of jit_fallback_ops — dispatch is expected, not a coverage hole.
  std::uint64_t jit_fallback_ops = 0;
  std::uint64_t jit_fallback_float = 0;
  std::uint64_t jit_fallback_conv = 0;
  std::uint64_t jit_fallback_call = 0;
  std::uint64_t jit_fallback_other = 0;
  /// INVOKE/SUBMIT/INVOKE_BATCH lanes answered from the short-TTL
  /// single-invoke result memo without entering a sandbox: twins riding a
  /// recent execution, and retries whose first attempt executed but lost
  /// its response in flight (the exactly-once replay absorber).
  std::uint64_t invoke_memo_hits = 0;
  /// Invocations that recovered on a DIFFERENT device after their placed
  /// device failed appraisal (reboot mid-flight, expired evidence the
  /// handshake could not refresh): the session was transparently
  /// re-placed and the lane replayed on a live device.
  std::uint64_t migrations = 0;
  /// Module prepares pushed to enrolled devices by the background prewarm
  /// sweep (cross-device ModuleCache::prepare, so failover lands warm).
  std::uint64_t prewarm_prepares = 0;
  /// Queueing-delay percentiles over every work item admitted to a backend
  /// run queue (admission timestamp -> worker pickup), from a log2
  /// histogram: values are bucket upper bounds, 0 when nothing ran yet.
  std::uint64_t queue_delay_p50_ns = 0;
  std::uint64_t queue_delay_p90_ns = 0;
  std::uint64_t queue_delay_p99_ns = 0;
  /// Per-stage latency histograms of the invoke pipeline, serialised from
  /// the gateway's obs::Registry (stage.queue / stage.exec /
  /// stage.tee_entry / stage.ra).
  StageStats stage_queue;
  StageStats stage_exec;
  StageStats stage_tee_entry;
  StageStats stage_ra;
  /// Native tier-up compile durations (wasm.tier_compile_ns). Populated
  /// only when the STATS request set its detail flag, like slow_invokes;
  /// the wire always carries the field.
  StageStats stage_jit_compile;
  std::vector<DeviceStats> devices;
  std::vector<RaShardStats> ra_shards;
  /// Most recent slow invocations (newest last); populated only when the
  /// STATS request set its detail flag. The wire always carries the count.
  std::vector<SlowInvoke> slow_invokes;

  Bytes encode() const;
  static Result<GatewayStats> decode(ByteView data);
};

struct DetachRequest {
  std::uint64_t session_id = 0;

  Bytes encode() const;
  static Result<DetachRequest> decode(ByteView data);
};

}  // namespace watz::gateway
