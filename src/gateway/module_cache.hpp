// Per-device module cache for the attested execution gateway.
//
// Fig 4 shows the Loading phase (decode + validate + AOT translation)
// dominating launch cost at ~73%. It depends only on the module bytes, so
// the cache keeps the PreparedModule of every measurement it has seen and
// repeat launches pay only Transition + heap allocation + Instantiate. On
// top of that sits a warm pool of ready LoadedApp instances per
// measurement, handed out PER SLOT: every pooled instance is bound to the
// secure monitor it was instantiated on (one core::SandboxSlot of the
// device), and acquire() only hands it back to a caller presenting that
// same monitor — an instance is never shared across slots, so concurrent
// slots never race one sandbox's monitor state. Releasing an app parks it
// for the next invocation of the same (module, slot), which then skips
// instantiation entirely.
//
// Both live in the device's secure heap (27 MB ceiling), so the cache
// enforces a byte budget: retained code pages plus pooled guest heaps are
// charged, and least-recently-used measurements are evicted whole when a
// newcomer would overflow the budget. A module that is LIVE in any slot
// (checked out via acquire, not yet released or forfeited) is pinned: it
// is only evictable once no slot holds an instance of it.
//
// Concurrency: acquire/release/contains are serialised by a per-cache
// mutex, held for the whole operation (including prepare/instantiate —
// holding it is what guarantees a pooled instance is never handed to two
// tenants and the budget is never overshot by a racing insert). The mutex
// is a leaf: no fabric, session or gateway lock is ever taken under it,
// and it is never held across a guest invoke (invokes happen on the
// lease, outside the cache). Counters are atomic so fleet stats can
// sample them from other threads without taking the lock.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "core/runtime.hpp"
#include "obs/metrics.hpp"

namespace watz::gateway {

struct ModuleCacheConfig {
  /// Secure-heap budget for retained code pages + pooled instances.
  std::size_t budget_bytes = 8 * 1024 * 1024;
  /// Warm LoadedApp instances retained per measurement (across all slots;
  /// a pool serving an N-slot device wants at least N so every slot can
  /// park one — Gateway::add_device widens it accordingly).
  std::size_t max_pool_per_module = 2;
};

class ModuleCache;

/// What acquire() hands out; give the app back via ModuleCache::release()
/// to warm the pool for the next caller. A lease destroyed while still
/// holding its app (guest trap, error path, a test dropping it) forfeits
/// its live pin automatically, so the module becomes evictable again.
struct AppLease {
  AppLease() = default;
  AppLease(AppLease&& other) noexcept { *this = std::move(other); }
  AppLease& operator=(AppLease&& other) noexcept {
    if (this != &other) {
      drop_pin();
      app = std::move(other.app);
      module_cache_hit = other.module_cache_hit;
      pool_hit = other.pool_hit;
      launch_ns = other.launch_ns;
      cache = other.cache;
      other.cache = nullptr;
    }
    return *this;
  }
  AppLease(const AppLease&) = delete;
  AppLease& operator=(const AppLease&) = delete;
  ~AppLease() { drop_pin(); }

  std::unique_ptr<core::LoadedApp> app;
  bool module_cache_hit = false;  ///< prepared module reused (Loading skipped)
  bool pool_hit = false;          ///< whole instance reused (nothing launched)
  std::uint64_t launch_ns = 0;    ///< instantiation cost paid by this acquire
  ModuleCache* cache = nullptr;   ///< issuing cache (live-pin bookkeeping)

 private:
  inline void drop_pin() noexcept;
};

class ModuleCache {
 public:
  ModuleCache(core::WatzRuntime& runtime, ModuleCacheConfig config = {})
      : runtime_(runtime), config_(config) {}

  /// Acquires a ready instance for `measurement`, bound to `monitor` (a
  /// sandbox slot's; nullptr = the device's primary monitor). Pool hit:
  /// pops an instance parked by the SAME slot. Module hit: instantiates
  /// from the cached prepared form onto the slot's monitor. Miss: runs the
  /// full cold pipeline on `binary` (an error if empty). Every successful
  /// lease pins the module against eviction until release()/forfeit().
  Result<AppLease> acquire(const crypto::Sha256Digest& measurement, ByteView binary,
                           const core::AppConfig& config,
                           tz::SecureMonitor* monitor = nullptr);

  /// Prewarm: runs the Loading phase for `measurement` and retains the
  /// prepared form WITHOUT instantiating anything — what the gateway's
  /// cross-device prewarm sweep pushes to every enrolled device so a
  /// session failing over lands on a warm cache (its first invoke is a
  /// cache HIT). A measurement already cached is a no-op success; a fresh
  /// prepare counts in prewarms(), NOT misses() — the whole point is that
  /// failover pays zero cold misses. The prepared form binds to the
  /// device's primary monitor, like any acquire-path prepare.
  Status prepare(const crypto::Sha256Digest& measurement, ByteView binary,
                 wasm::ExecMode mode);

  /// Parks the instance in the warm pool of its measurement, tagged with
  /// the slot monitor it is bound to (subject to pool-size and budget
  /// limits; dropped otherwise). Drops the lease's live pin.
  void release(std::unique_ptr<core::LoadedApp> app);

  /// Drops the live pin of a lease whose app was torn down instead of
  /// released (guest trap, shutdown path).
  void forfeit(const crypto::Sha256Digest& measurement);

  /// Control plane: runs the queued native tier-up compiles of every cached
  /// measurement. The TierSets are collected under mu_ but compiled OUTSIDE
  /// it (mu_ is a leaf and codegen is slow); the sets are shared_ptr-held so
  /// a concurrent eviction cannot pull code pages out from under the
  /// compiler. Returns the number of functions tiered up by this sweep.
  std::size_t sweep_tier_compiles();

  /// Routes the tier metric flushes of every cached — and every future —
  /// measurement into registry-owned instruments (fleet-wide counters; the
  /// sinks must outlive the cache). Unset sinks are skipped. The trailing
  /// four split `fallback_ops` by thunk class so remaining coverage holes
  /// stay visible per class on the STATS wire.
  void bind_tier_metrics(obs::Counter* compiles, obs::Counter* entries,
                         obs::Counter* fallback_ops, obs::Histogram* compile_ns,
                         obs::Counter* fallback_float = nullptr,
                         obs::Counter* fallback_conv = nullptr,
                         obs::Counter* fallback_call = nullptr,
                         obs::Counter* fallback_other = nullptr);

  bool contains(const crypto::Sha256Digest& measurement) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.contains(measurement);
  }

  /// Instances of `measurement` currently checked out across all slots.
  std::uint32_t live_leases(const crypto::Sha256Digest& measurement) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(measurement);
    return it == entries_.end() ? 0 : it->second.live;
  }

  std::size_t charged_bytes() const noexcept {
    return static_cast<std::size_t>(charged_bytes_.get());
  }
  std::size_t cached_modules() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  std::uint64_t hits() const noexcept { return hits_.get(); }
  std::uint64_t misses() const noexcept { return misses_.get(); }
  std::uint64_t evictions() const noexcept { return evictions_.get(); }
  std::uint64_t pool_hits() const noexcept { return pool_hits_.get(); }
  std::uint64_t prewarms() const noexcept { return prewarms_.get(); }

  /// Tiering aggregates over the measurements currently cached (evicted
  /// modules' counts live on only in the bound registry sinks).
  std::uint64_t tier_up_compiles() const;
  std::uint64_t native_entries() const;
  std::uint64_t jit_fallback_ops() const;
  std::uint64_t jit_fallback_float() const;
  std::uint64_t jit_fallback_conv() const;
  std::uint64_t jit_fallback_call() const;
  std::uint64_t jit_fallback_other() const;
  std::size_t native_code_bytes() const;

  /// The cache's own metric instances, exposed so a gateway can link them
  /// into its obs::Registry under device-scoped names (the cache stays the
  /// owner; gateway-free users keep working untouched).
  const obs::Counter& hits_counter() const noexcept { return hits_; }
  const obs::Counter& misses_counter() const noexcept { return misses_; }
  const obs::Counter& evictions_counter() const noexcept { return evictions_; }
  const obs::Counter& pool_hits_counter() const noexcept { return pool_hits_; }
  const obs::Counter& prewarms_counter() const noexcept { return prewarms_; }
  const obs::Gauge& charged_bytes_gauge() const noexcept {
    return charged_bytes_;
  }

  /// Per-measurement execution-tier snapshot of every cached module, for
  /// the STATS detail surface: which tier it runs on (interp / AOT /
  /// native entries installed) and how hot it is.
  struct TierState {
    crypto::Sha256Digest measurement{};
    wasm::ExecMode mode = wasm::ExecMode::Aot;
    std::uint32_t functions = 0;
    std::uint32_t native_functions = 0;
    std::uint32_t hot_threshold = 0;
    std::uint64_t total_calls = 0;
  };
  std::vector<TierState> tier_states() const;

 private:
  struct Entry {
    std::shared_ptr<const core::PreparedModule> prepared;
    std::vector<std::unique_ptr<core::LoadedApp>> pool;
    std::size_t pooled_bytes = 0;  // guest heaps parked in the pool
    std::uint64_t last_used = 0;
    /// Leases checked out and not yet released/forfeited. A module with
    /// live instances in any slot is pinned against eviction.
    std::uint32_t live = 0;
  };

  std::size_t entry_bytes(const Entry& entry) const {
    return entry.prepared->code_bytes() + entry.pooled_bytes;
  }

  /// Evicts LRU entries (sparing `keep` and anything live in a slot)
  /// until `incoming` more bytes fit the budget. Best effort: stops when
  /// nothing evictable remains. Caller holds mu_.
  void make_room(std::size_t incoming, const crypto::Sha256Digest* keep);

  core::WatzRuntime& runtime_;
  ModuleCacheConfig config_;
  mutable std::mutex mu_;  // guards entries_, tick_ and the tier sinks
  std::map<crypto::Sha256Digest, Entry> entries_;
  std::uint64_t tick_ = 0;
  obs::Gauge charged_bytes_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter pool_hits_;
  obs::Counter prewarms_;
  obs::Counter* tier_compiles_sink_ = nullptr;
  obs::Counter* tier_entries_sink_ = nullptr;
  obs::Counter* tier_fallback_sink_ = nullptr;
  obs::Counter* tier_fallback_float_sink_ = nullptr;
  obs::Counter* tier_fallback_conv_sink_ = nullptr;
  obs::Counter* tier_fallback_call_sink_ = nullptr;
  obs::Counter* tier_fallback_other_sink_ = nullptr;
  obs::Histogram* tier_compile_ns_sink_ = nullptr;
};

inline void AppLease::drop_pin() noexcept {
  // An app still held at destruction was torn down instead of released:
  // drop its live pin so the module becomes evictable again.
  if (cache && app) cache->forfeit(app->measurement());
  cache = nullptr;
}

}  // namespace watz::gateway
