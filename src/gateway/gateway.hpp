// The attested execution gateway: a multi-tenant service layer in front of
// a fleet of WaTZ devices.
//
// The gateway binds two fabric endpoints:
//   * a client-facing dispatcher (GatewayConfig::port) speaking the framed
//     protocol of protocol.hpp;
//   * an RA endpoint (GatewayConfig::ra_port) where the gateway's
//     ra::ShardedVerifier listens and enrolled devices prove themselves —
//     the same four-message WaTZ protocol of SS IV, with the device's
//     *platform claim* (hash of its measured boot chain) as the claim.
//     Handshake state is sharded by session id (GatewayConfig::ra_shards)
//     and whole fleets of handshakes pipeline through the batch frames of
//     ra/messages.hpp (one fabric exchange carries N msg0s), so attach
//     storms scale with shards instead of serialising on a verifier lock.
//
// Amortisation happens in two layers, one per expensive path:
//   * SessionManager — the RA handshake runs once per (session, device)
//     and its verified evidence is cached until the policy (TTL or a
//     boot-count change) invalidates it;
//   * ModuleCache (one per device) — the Loading phase runs once per
//     (device, measurement); warm invokes reuse the prepared module or a
//     pooled instance outright.
//
// Execution model (see DESIGN.md §2 "Concurrency model"): every enrolled
// device runs a POOL of sandbox slots (GatewayConfig::slots_per_device).
// Each slot is one core::SandboxSlot — its own secure monitor, its own
// worker thread, its own bounded run queue — so N slots of one device
// execute guest invokes concurrently, while control-plane TEE entry (RA
// handshakes on the device's primary monitor) serialises on the device's
// core::DeviceControl. The warm instance pool is handed out per slot
// (ModuleCache matches on the slot monitor), and sessions carry a soft
// slot-affinity hint so repeat invokes reuse a warm instance. Dispatcher
// handlers run on the calling client's thread and only ADMIT work: they
// pick a SLOT by sampled two-choice load (queue depth x EWMA slot
// latency, then busy time), enqueue a work item, and either wait for the
// result (INVOKE) or hand back a ticket (SUBMIT/POLL). When every
// eligible queue is at its bound the request is bounced with QUEUE_FULL
// backpressure instead of being admitted unbounded. The per-device
// secure-heap budget stays SHARED across the pool: all slots charge one
// TrustedOs heap and one ModuleCache budget.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/device.hpp"
#include "gateway/invoke_memo.hpp"
#include "gateway/module_cache.hpp"
#include "gateway/protocol.hpp"
#include "gateway/session_manager.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ra/verifier_shard.hpp"

namespace watz::gateway {

struct GatewayConfig {
  std::string hostname = "gateway";
  std::uint16_t port = 7000;     ///< client-facing dispatcher endpoint
  std::uint16_t ra_port = 7001;  ///< attestation endpoint devices prove to
  SessionPolicy session_policy{};
  ModuleCacheConfig cache{};
  /// Guest heap for invokes that do not specify one.
  std::size_t default_heap_bytes = 2 * 1024 * 1024;
  /// Normal-world budget for the LOAD_MODULE binary registry;
  /// least-recently-used binaries are dropped beyond it (clients re-upload
  /// on the resulting cold miss).
  std::size_t binary_registry_budget_bytes = 64 * 1024 * 1024;
  /// Bound of each slot's run queue (queued + executing work items).
  /// INVOKE/SUBMIT admission past it answers QUEUE_FULL.
  std::size_t worker_queue_capacity = 64;
  /// Sandbox slots per enrolled device: each slot is one
  /// core::SandboxSlot (own secure monitor) with its own worker thread
  /// and run queue, so one device executes up to this many invokes
  /// concurrently. 1 reproduces the old single-worker actor model.
  std::size_t slots_per_device = 1;
  /// Native-codegen tiering across the fleet: forwarded to each enrolled
  /// device's runtime (core::JitTierOptions) at enrolment. Hot functions
  /// tier up to x86-64 native code, compiled ONCE per measurement by the
  /// background sweeper and inherited by every warm checkout. No-ops on
  /// hosts where wasm::jit::jit_available() is false (non-x86-64,
  /// WATZ_DISABLE_JIT): execution stays on the AOT stream wholesale.
  bool jit_tiering = true;
  /// Per-function call count before background native compilation.
  std::uint32_t jit_hot_calls = 64;
  /// SUBMIT single-invoke dedup memo: a SUBMIT whose (measurement, entry,
  /// args, heap) executed this recently — and whose session holds fresh
  /// evidence for the executing device — is answered with the memoised
  /// result instead of entering a sandbox (the async counterpart of the
  /// INVOKE_BATCH rider machinery). 0 (default) disables the memo.
  std::uint64_t invoke_memo_ttl_ns = 0;
  /// Background evidence renewal: re-attest session evidence at ~80% of
  /// SessionPolicy::evidence_ttl_ns (batched, on the control lane) so the
  /// invoke hot path never pays a lazy RA handshake. Only meaningful with
  /// a finite TTL.
  bool evidence_renewal = true;
  /// Renewal sweep period; 0 = auto (evidence_ttl_ns / 5).
  std::uint64_t renewal_interval_ns = 0;
  /// Cross-device module prewarm: the background sweeper pushes every
  /// registered LOAD_MODULE binary through ModuleCache::prepare() on every
  /// enrolled device (prepare-only — no instantiation), so a session that
  /// fails over to another device lands on a warm cache instead of paying
  /// the ~73% Loading phase cold. Off by default; tests/benches can also
  /// drive sweep_module_prewarms() directly.
  bool module_prewarm = false;
  /// Verifier shards on the RA endpoint: handshake state is sharded by
  /// session id so attach storms from many devices appraise in parallel
  /// instead of serialising on one verifier lock.
  std::size_t ra_shards = 4;
  /// Per-shard ephemeral keypair rotation window
  /// (ra::VerifierPolicy::session_key_reuse; 1 = fresh keypair per
  /// handshake, the full-PFS default).
  std::uint64_t ra_session_key_reuse = 1;
  /// Modeled per-appraisal verifier latency, slept under the owning shard
  /// lock (see ra::ShardedVerifierConfig::appraisal_latency_ns). Bench
  /// knob; 0 (default) disables it.
  std::uint64_t ra_appraisal_latency_ns = 0;
  /// Trace sampling: every Nth admitted INVOKE/SUBMIT decision (and every
  /// Nth INVOKE_BATCH, whose lanes share one trace) records stage spans
  /// into the gateway's SpanSink. 0 (default) = tracing off; a non-zero
  /// trace_id on the wire request forces a trace regardless.
  std::uint64_t trace_sample_n = 0;
  /// Invocations whose end-to-end gateway residency (queueing included)
  /// exceeds this land in the slow-invoke ring dumped by STATS detail.
  /// 0 disables the log.
  std::uint64_t slow_invoke_threshold_ns = 0;
};

class Gateway {
 public:
  Gateway(net::Fabric& fabric, GatewayConfig config, ByteView identity_seed);
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds the dispatcher and RA endpoints on the fabric.
  Status start();

  /// Enrols a device: endorses its attestation key, registers its platform
  /// claim as a reference value, gives it a module cache and starts its
  /// worker thread. Re-enrolling the same hostname models a reboot/board
  /// swap: the boot count bumps, which invalidates every session's cached
  /// evidence for that device (the worker survives the reboot).
  Status add_device(core::Device& device);

  /// Fleet-wide statistics, serialised from the metrics registry. `detail`
  /// additionally copies out the slow-invoke ring (GatewayStats::slow_invokes).
  GatewayStats stats(bool detail = false);
  /// The typed metrics plane: every gateway counter/gauge/histogram lives
  /// here (or is linked here by its owning layer) under a stable name.
  obs::Registry& registry() noexcept { return registry_; }
  /// The span sink sampled invocations record into; drain it (or hand it
  /// to obs::SpanSink::to_chrome_trace) to render invocation flame graphs.
  obs::SpanSink& span_sink() noexcept { return span_sink_; }
  SessionManager& sessions() noexcept { return sessions_; }
  ra::ShardedVerifier& verifier() noexcept { return *verifier_; }
  const crypto::EcPoint& identity() const noexcept { return verifier_->identity_key(); }
  const GatewayConfig& config() const noexcept { return config_; }

  /// Runs one evidence-renewal pass NOW (what the background sweeper does
  /// every renewal interval): for every device, re-attests — through the
  /// batched handshake machinery, one forced control-lane item per
  /// backend — every session whose evidence has aged past ~80% of the
  /// TTL. Returns how many evidences were renewed. Public so tests drive
  /// renewal deterministically.
  std::size_t sweep_evidence_renewals();

  /// Runs one native tier-up pass NOW (what the background sweeper does
  /// every interval): compiles every function the fleet's heat counters
  /// queued since the last pass. Codegen never enters a TEE and takes only
  /// leaf locks, so it runs on the calling (control-plane) thread rather
  /// than occupying a sandbox slot. Returns functions tiered up. Public so
  /// tests and benches drive tiering deterministically.
  std::size_t sweep_tier_compiles();

  /// Runs one cross-device prewarm pass NOW (what the background sweeper
  /// does when GatewayConfig::module_prewarm is on): for every enrolled
  /// device, pushes every registered binary the device's cache does not
  /// hold through ModuleCache::prepare() — one forced control-lane item
  /// per backend, prepares fanned across backends and collected like the
  /// renewal sweep. Returns how many modules were freshly prepared across
  /// the fleet. Public so tests drive prewarm deterministically.
  std::size_t sweep_module_prewarms();

 private:
  struct Backend;

  /// One sandbox slot of a device's execution pool: a worker thread
  /// draining a bounded MPSC run queue, bound to one core::SandboxSlot
  /// (its monitor) of the backend's current DeviceControl. All guest
  /// execution happens on slot workers; control-plane items (attach
  /// attestation, evidence renewal) ride slot 0 — the "control lane" —
  /// with force admission, serialising on the DeviceControl TEE mutex
  /// inside the item.
  struct Slot {
    Backend* backend = nullptr;
    std::size_t index = 0;      ///< within the device pool (monitor binding)
    std::size_t global_id = 0;  ///< fleet-wide id (affinity hints, tie-break)

    /// Bounded MPSC run queue: any dispatcher thread posts, the one worker
    /// drains. inflight counts queued + executing and is what admission
    /// bounds and placement compares. Every item carries its admission
    /// timestamp; the worker hands the measured queueing delay to the task.
    struct WorkItem {
      std::uint64_t admitted_ns = 0;
      std::function<void(std::uint64_t queue_delay_ns)> run;
    };
    std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<WorkItem> queue;
    bool stop = false;
    std::thread worker;

    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint32_t> queue_depth_peak{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> invocations{0};
    /// EWMA (alpha = 1/8) of the observed per-invoke service time
    /// (launch + guest execution) on this slot. Written only by the
    /// slot's own worker thread; read by placement on any dispatcher
    /// thread. 0 = never sampled: placement probes such a slot ahead
    /// of anything measured, but only with a bounded couple of items
    /// (see placement_cost).
    std::atomic<std::uint64_t> ewma_invoke_ns{0};
    /// Admissions this slot bounced with QUEUE_FULL. Spill-over admission
    /// bumps every slot it bounced off, so the per-slot counts expose
    /// WHICH queues saturate (the gateway-level counter only counts
    /// requests that exhausted every candidate).
    obs::Counter queue_full_rejections;
  };

  /// One enrolled device: the control-plane state shared by its slot pool.
  struct Backend {
    std::string hostname;         ///< immutable after first enrolment
    std::size_t enrol_index = 0;  ///< stable enrolment order

    /// Re-enrolment swaps these under state_mu; workers snapshot them so
    /// a mid-flight invoke keeps the pre-reboot cache (and, on a board
    /// swap, the pre-swap device + its slot monitors) alive instead of
    /// racing the swap.
    std::mutex state_mu;
    core::Device* device = nullptr;
    std::shared_ptr<core::DeviceControl> control;
    std::shared_ptr<ModuleCache> cache;
    std::shared_ptr<crypto::Fortuna> attester_rng;
    crypto::Sha256Digest platform_claim{};
    std::uint64_t boot_count = 0;

    /// The slot pool: fixed at first enrolment (slots_per_device), the
    /// worker threads survive re-enrolment the way the old single worker
    /// did.
    std::vector<std::unique_ptr<Slot>> slots;

    /// This device's admission->pickup delay histogram
    /// (device.<host>.queue_delay in the gateway registry); set once at
    /// first enrolment, stable thereafter (registry entries never move).
    obs::Histogram* queue_delay_hist = nullptr;
  };

  /// Placement cost of admitting one more item to `slot`: predicted
  /// completion time (queued + executing + the newcomer) x the slot's
  /// EWMA service time — the "Adaptive placement" model that lets
  /// heterogeneous fleets route around slow boards. Admission bumps
  /// `inflight` immediately, so lanes a batch pass already admitted are
  /// visible to the next lane's score with no extra bookkeeping.
  static std::uint64_t placement_cost(const Slot& slot);

  Result<Bytes> handle_request(std::uint64_t conn, ByteView request);
  Result<Bytes> handle_attach(std::uint64_t conn, ByteView request);
  Result<Bytes> handle_attach_batch(std::uint64_t conn, ByteView request);
  /// Shared attach fan-out: creates one session per client, attests the
  /// whole fleet for all of them through the batched handshake path (one
  /// forced work item per backend, lane i == session i), detaches sessions
  /// no device would attest, links survivors to `conn`. A plain ATTACH is
  /// a batch of one.
  Result<AttachBatchResponse> attach_sessions(std::uint64_t conn,
                                              const std::vector<std::string>& clients);
  Result<Bytes> handle_load_module(ByteView request);
  Result<Bytes> handle_invoke(ByteView request);
  /// INVOKE_BATCH: fans every lane across the per-slot run queues in one
  /// admission pass (each lane takes the cheapest slot by placement_cost,
  /// spilling past full queues), then waits for the whole fan to
  /// complete. Lanes sharing (measurement, entry, args, heap) whose
  /// sessions all hold fresh evidence for the leader's device execute
  /// ONCE: the first such lane runs, the riders fan its result
  /// (deduped_lanes counts them). Per-lane failures — unknown session,
  /// total backpressure, appraisal, traps — report at that lane's index
  /// while its siblings succeed.
  Result<Bytes> handle_invoke_batch(ByteView request);
  Result<Bytes> handle_submit(ByteView request);
  Result<Bytes> handle_poll(ByteView request);
  Result<Bytes> handle_stats(ByteView request);
  Result<Bytes> handle_detach(ByteView request);

  /// Fabric close hook for the dispatcher endpoint: a client that drops
  /// its connection implicitly detaches every session it attached over it,
  /// failing that session's queued work instead of racing it.
  void on_client_close(std::uint64_t conn);
  /// Detach + unlink the conn mapping. `drop_tickets` additionally purges
  /// the session's pending SUBMIT tickets: set on connection loss (nobody
  /// is left to poll them), clear on explicit DETACH so the client can
  /// still redeem the failures of its drained work items.
  bool detach_session(std::uint64_t session_id, bool drop_tickets);

  /// Placement candidates, best first: the session's idle affinity slot
  /// when it has one, then a sampled two-choice pick (lower
  /// placement_cost — queue depth x EWMA slot latency — then lower
  /// accumulated busy time, then global slot order) followed by the
  /// remaining slots as spill-over, so a slot that fails appraisal or a
  /// full queue doesn't wedge the request. O(1) comparisons in the
  /// common case — no per-request sort. `affinity_hint` is the session's
  /// affinity_slot value (0 = none); the hinted slot leads ONLY when
  /// currently idle — a busy warm slot must not collect a convoy.
  std::vector<Slot*> placement_candidates(std::uint64_t affinity_hint = 0);

  /// Immutable placement snapshot of one slot: the three ranking keys
  /// read ONCE from the live atomics. Sorting/min-ing snapshots (instead
  /// of comparing the atomics in the comparator) keeps the order strict-
  /// weak even while workers mutate inflight/busy/EWMA concurrently —
  /// comparing live atomics inside std::sort is undefined behaviour.
  struct ScoredSlot {
    std::uint64_t cost = 0;   ///< placement_cost at snapshot time
    std::uint64_t busy = 0;   ///< accumulated busy time tie-break
    std::size_t order = 0;    ///< global slot-order tie-break
    Slot* slot = nullptr;
    /// The one placement order both admission paths share.
    bool operator<(const ScoredSlot& other) const noexcept {
      if (cost != other.cost) return cost < other.cost;
      if (busy != other.busy) return busy < other.busy;
      return order < other.order;
    }
  };
  static ScoredSlot score_slot(Slot& slot);

  /// Enqueues a work item on the slot's run queue, stamping its
  /// admission time. Fails QUEUE_FULL at the bound unless `force`
  /// (control-plane items: attach attestation, evidence renewal).
  Status post(Slot& slot, std::function<void(std::uint64_t)> task,
              bool force = false);
  void worker_loop(Slot& slot);

  /// Background sweeper (started by start() when evidence renewal has a
  /// finite TTL to stay ahead of, or JIT tiering needs its compile pump):
  /// wakes every renewal interval and runs sweep_evidence_renewals()
  /// and/or sweep_tier_compiles().
  void renewal_loop();

  /// Result-memo lookup (INVOKE, INVOKE_BATCH lanes and SUBMIT, gated on
  /// invoke_memo_ttl_ns != 0): the memoised response for this invoke, if
  /// one was recorded within the TTL and the trust gate passes — either
  /// `session` holds fresh evidence for the device that executed it, or
  /// `session` IS the producer redeeming its own result (a retry after a
  /// chaos-dropped response; its result was produced under evidence that
  /// was fresh at execution time, so no freshness re-check can invalidate
  /// it — this is what absorbs duplicate deliveries without
  /// double-executing). Bumps invoke_memo_hits on a hit.
  std::optional<InvokeResponse> memo_lookup(Session& session,
                                            const InvokeRequest& request);
  /// Records a successful invoke outcome in the memo (TTL enabled only).
  /// `producer_session` is the session whose invoke produced the result.
  void memo_store(const InvokeRequest& request, const InvokeResponse& response,
                  const std::string& device, std::uint64_t boot_count,
                  std::uint64_t producer_session);

  /// The trace decision for one admitted request (or one whole batch):
  /// a non-zero wire id joins that trace; otherwise every trace_sample_n'th
  /// decision opens a fresh trace. Returns the trace id, 0 = untraced.
  std::uint64_t maybe_trace(std::uint64_t wire_trace_id);

  /// Folds one completed invocation into the slow-invoke ring when its
  /// gateway residency exceeded GatewayConfig::slow_invoke_threshold_ns.
  void record_slow_invoke(SlowInvoke entry);

  /// The INVOKE work item body. Runs ON the slot's worker thread: attests
  /// the session if needed (control plane, serialised on the
  /// DeviceControl TEE mutex), acquires a cached instance bound to the
  /// slot's monitor, invokes, releases clean exits back to the warm pool,
  /// and stamps the session's slot-affinity hint. Emits stage spans when
  /// the posting dispatcher sampled this invocation into a trace.
  Result<InvokeResponse> execute_invoke(Slot& slot, const SessionPtr& session,
                                        const InvokeRequest& request,
                                        std::uint64_t queue_delay_ns);

  /// Admits an invoke to the best slot and returns its future, walking
  /// spill-over candidates past full queues. On total backpressure returns
  /// a QUEUE_FULL error. `sync` also re-admits to the next candidate when
  /// a device fails appraisal (the async path reports the failure through
  /// the ticket instead).
  Result<InvokeResponse> dispatch_invoke_sync(const SessionPtr& session,
                                              const InvokeRequest& request,
                                              obs::TraceContext trace = {});

  /// Posts an invoke work item to `slot` and returns the future its
  /// worker will fulfil (QUEUE_FULL Status at the admission bound).
  /// Shared by the sync INVOKE and async SUBMIT paths. A non-zero `trace`
  /// rides the work item: the slot worker installs it as the thread's
  /// trace so every layer below records into the gateway sink.
  Result<std::future<Result<InvokeResponse>>> post_invoke(
      Slot& slot, const SessionPtr& session, const InvokeRequest& request,
      obs::TraceContext trace = {});

  /// Drives the attester side of the WaTZ protocol inside the device's TEE
  /// against this gateway's RA endpoint. Runs on a slot worker thread,
  /// serialised on the DeviceControl TEE mutex (the attester enters the
  /// device's PRIMARY monitor — control plane, not the slot's). The
  /// returned evidence has already been appraised by verifier_ en route.
  Result<attestation::Evidence> run_handshake(Backend& backend);

  /// Outcome of one batched protocol run against one device.
  struct BatchHandshake {
    /// RA wire round-trips actually spent (2 when any lane reached msg2 —
    /// independent of the lane count, which is the amortisation).
    std::uint32_t fabric_exchanges = 0;
    std::vector<Result<attestation::Evidence>> lanes;
  };

  /// Batched counterpart of run_handshake: drives `lanes` attester
  /// sessions in lockstep inside the device's TEE — all msg0s cross in ONE
  /// fabric exchange, all msg2s in a second (the ra/messages.hpp batch
  /// frames), so the handshake's two round-trips are amortised across the
  /// whole batch. Outer error = transport/device failure; per-lane results
  /// let a batch partially succeed (one stale lane fails alone).
  Result<BatchHandshake> run_handshake_batch(Backend& backend, std::size_t lanes);

  struct RegisteredBinary {
    Bytes bytes;
    std::uint64_t last_used = 0;
  };

  /// Copies the registered binary for `measurement` out of the registry
  /// (empty when never uploaded / already evicted). A copy, not a view:
  /// the worker consuming it must not race registry eviction.
  Bytes copy_binary(const crypto::Sha256Digest& measurement);
  /// Inserts under the registry budget, evicting LRU binaries to fit.
  /// Caller holds binaries_mu_.
  void register_binary(const crypto::Sha256Digest& measurement, Bytes binary);

  net::Fabric& fabric_;
  GatewayConfig config_;
  crypto::Fortuna rng_;  // seeds the shard RNG streams
  /// RA-endpoint verifier, sharded by session id: each shard locks
  /// independently, so concurrent handshakes from many backend workers
  /// appraise in parallel (the old single ra_mu_ serialised them all).
  std::unique_ptr<ra::ShardedVerifier> verifier_;
  SessionManager sessions_;

  mutable std::mutex backends_mu_;  // guards backends_ / order vectors' shape
  std::map<std::string, Backend> backends_;  // keyed by device hostname
  std::vector<Backend*> backend_order_;      // enrolment order (stable ptrs)
  /// Every slot of every backend, flattened in enrolment order — THE
  /// placement domain (slot global_id indexes into it). Stable pointers:
  /// slots are never destroyed while the gateway lives.
  std::vector<Slot*> slot_order_;
  std::atomic<std::uint64_t> placement_tick_{0};

  std::mutex binaries_mu_;  // guards the LOAD_MODULE registry
  std::map<crypto::Sha256Digest, RegisteredBinary> binaries_;
  std::size_t binaries_bytes_ = 0;
  std::uint64_t binaries_tick_ = 0;

  /// SUBMIT tickets awaiting POLL.
  struct PendingInvoke {
    std::uint64_t session_id = 0;
    std::future<Result<InvokeResponse>> result;
  };
  std::mutex pending_mu_;
  std::map<std::uint64_t, PendingInvoke> pending_;
  std::atomic<std::uint64_t> next_ticket_{1};

  /// Single-invoke result memo, keyed by the INVOKE_BATCH dedup key
  /// (measurement + entry + args + heap). Trust gating and hot-aware
  /// eviction live in InvokeMemo; the gateway applies the trust gate in
  /// memo_lookup before note_hit. Bounded at kInvokeMemoCap.
  static constexpr std::size_t kInvokeMemoCap = 256;
  InvokeMemo memo_{kInvokeMemoCap};

  std::mutex conn_mu_;  // guards conn_sessions_
  std::map<std::uint64_t, std::vector<std::uint64_t>> conn_sessions_;

  /// The typed metrics plane. Declared before the references below: the
  /// named metrics are resolved ONCE here (the registry hands out stable
  /// addresses), so the hot paths touch a plain atomic — never the
  /// registry map or its lock.
  obs::Registry registry_;
  obs::SpanSink span_sink_;
  obs::Counter& invocations_ = registry_.counter("gateway.invocations");
  /// Requests bounced after exhausting every placement candidate (the
  /// per-slot counters record the individual bounces).
  obs::Counter& queue_full_rejections_ =
      registry_.counter("gateway.queue_full_rejections");
  /// INVOKE_BATCH lanes answered by riding a sibling's execution.
  obs::Counter& deduped_lanes_ = registry_.counter("gateway.deduped_lanes");
  /// Evidences re-proved ahead of TTL by the renewal sweep.
  obs::Counter& evidence_renewals_ =
      registry_.counter("gateway.evidence_renewals");
  /// Requests answered from the single-invoke result memo.
  obs::Counter& invoke_memo_hits_ =
      registry_.counter("gateway.invoke_memo_hits");
  /// Sync invokes transparently re-placed onto a DIFFERENT device after
  /// their first-choice device failed appraisal (reboot storm, expired
  /// evidence, dead link) — the session-migration counter the chaos suite
  /// asserts on.
  obs::Counter& migrations_ = registry_.counter("gateway.migrations");
  /// Modules freshly prepared by the cross-device prewarm sweep.
  obs::Counter& prewarm_prepares_ =
      registry_.counter("gateway.prewarm_prepares");
  /// Fleet-wide native-tiering instruments. Every enrolled device's module
  /// cache binds its TierSets' metric flushes here (codegen is per
  /// measurement, so these count tier-ups across the whole fleet).
  obs::Counter& tier_up_compiles_ = registry_.counter("wasm.tier_up_compiles");
  obs::Counter& native_entries_ = registry_.counter("wasm.native_entries");
  obs::Counter& jit_fallback_ops_ = registry_.counter("wasm.jit_fallback_ops");
  /// The per-class split of jit_fallback_ops (float + conv + other; calls
  /// are counted separately — dispatch is expected, not missing coverage).
  obs::Counter& jit_fallback_float_ =
      registry_.counter("wasm.jit_fallback_float");
  obs::Counter& jit_fallback_conv_ = registry_.counter("wasm.jit_fallback_conv");
  obs::Counter& jit_fallback_call_ = registry_.counter("wasm.jit_fallback_call");
  obs::Counter& jit_fallback_other_ =
      registry_.counter("wasm.jit_fallback_other");
  obs::Histogram& tier_compile_ns_hist_ =
      registry_.histogram("wasm.tier_compile_ns");
  /// Per-stage latency histograms (log2 buckets; STATS serialises their
  /// percentiles). stage.queue doubles as the fleet-wide queue-delay
  /// percentile source the old hand-rolled bucket array fed.
  obs::Histogram& queue_delay_hist_ = registry_.histogram("stage.queue");
  obs::Histogram& stage_exec_hist_ = registry_.histogram("stage.exec");
  obs::Histogram& stage_tee_entry_hist_ =
      registry_.histogram("stage.tee_entry");
  obs::Histogram& stage_tee_exit_hist_ = registry_.histogram("stage.tee_exit");
  obs::Histogram& stage_ra_hist_ = registry_.histogram("stage.ra");
  /// Sampling clock for maybe_trace (counts trace DECISIONS, not lanes:
  /// one tick per INVOKE/SUBMIT and one per INVOKE_BATCH).
  std::atomic<std::uint64_t> trace_tick_{0};
  /// Slow-invoke ring: the last kSlowInvokeRing invocations that overran
  /// GatewayConfig::slow_invoke_threshold_ns, oldest evicted first.
  static constexpr std::size_t kSlowInvokeRing = 32;
  std::mutex slow_mu_;
  std::deque<SlowInvoke> slow_invokes_;
  /// Renewal sweeper thread state (start()/~Gateway lifecycle).
  std::mutex renew_mu_;
  std::condition_variable renew_cv_;
  bool renew_stop_ = false;
  std::thread renew_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

/// Client-side convenience wrapper: frames requests, opens envelopes.
///
/// Threading: one instance per client thread — the blocking calls are not
/// locked against each other, but any number of GatewayClients may drive
/// the same gateway concurrently. The *_async calls are the exception:
/// they are safe to issue from the owning thread while earlier async work
/// is still in flight, because completions are serviced by ONE internal
/// drain thread (started lazily on the first async call, joined by
/// close()/the destructor after every issued future and callback has been
/// fulfilled). Completion callbacks and future fulfilment run on that
/// drain thread, in issue order, never concurrently with each other — a
/// callback must not call back into this client.
class GatewayClient {
 public:
  /// Retry policy for QUEUE_FULL backpressure: exponential backoff with
  /// full jitter (deterministic xorshift stream per client), replacing the
  /// old busy-poll. `max_retries` bounds invoke()'s transparent retries;
  /// invoke_batch uses the same curve between drain passes.
  struct BackoffConfig {
    int max_retries = 8;
    std::uint64_t base_ns = 200'000;     ///< first sleep; doubles per retry
    std::uint64_t cap_ns = 10'000'000;   ///< sleep ceiling
  };

  explicit GatewayClient(net::Fabric& fabric) : fabric_(fabric) {}
  ~GatewayClient() { close(); }
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  Status connect(const std::string& host, std::uint16_t port);
  void close();
  void set_backoff(BackoffConfig backoff) { backoff_ = backoff; }

  /// Per-item completion of invoke_batch_async: the request's index in
  /// the submitted vector plus its result, delivered on the drain thread.
  using InvokeBatchCallback =
      std::function<void(std::size_t index, Result<InvokeResponse> result)>;

  Result<AttachResponse> attach(const std::string& client_name);
  /// Batched attach: one ATTACH_BATCH op per chunk of kAttachBatchChunk
  /// names, chunks pipelined concurrently over the connection
  /// (net::Fabric::exchange_all), results spliced back in order. The call
  /// succeeds when the wire did — inspect each AttachBatchResult for
  /// per-session verdicts (partial success is expected behaviour).
  Result<AttachBatchResponse> attach_all(const std::vector<std::string>& clients);
  Result<LoadModuleResponse> load_module(std::uint64_t session_id, ByteView binary);
  /// Invokes, transparently absorbing up to max_retries QUEUE_FULL
  /// rejections with jittered backoff. A still-full fleet surfaces the
  /// final QUEUE_FULL error (is_queue_full()).
  Result<InvokeResponse> invoke(const InvokeRequest& request);
  /// Async pair: submit returns a ticket immediately (or QUEUE_FULL, see
  /// is_queue_full); poll redeems it.
  Result<SubmitResponse> submit(const InvokeRequest& request);
  Result<PollResponse> poll(std::uint64_t session_id, std::uint64_t ticket);
  /// Pipelined batch: keeps up to the gateway's admission bound in flight
  /// via SUBMIT, absorbing QUEUE_FULL backpressure by draining completed
  /// tickets — every outstanding ticket is polled in ONE pipelined
  /// exchange per drain pass (Fabric::exchange_all), not one round-trip
  /// per ticket — and returns one result per request, in order.
  std::vector<Result<InvokeResponse>> invoke_batch(
      const std::vector<InvokeRequest>& requests);
  /// Batched invoke over INVOKE_BATCH frames: one wire exchange per chunk
  /// of kInvokeBatchChunk requests (chunks pipelined concurrently via
  /// Fabric::exchange_all), one result per request in order. O(1) wire
  /// exchanges in the batch size — the amortisation invoke_batch's
  /// SUBMIT-per-item path cannot reach. Partial success is the contract:
  /// the call succeeds when the wire did; inspect each Result.
  std::vector<Result<InvokeResponse>> invoke_all(
      const std::vector<InvokeRequest>& requests);

  // -- async API -------------------------------------------------------------
  // Future-returning counterparts of the blocking calls, built on
  // Fabric::send_async: the wire exchange runs concurrently and the
  // decoded response arrives through the future, fulfilled by the
  // client's drain thread. QUEUE_FULL is NOT absorbed here — an async
  // caller owns its own retry policy, so backpressure surfaces through
  // the future (is_queue_full()).
  std::future<Result<AttachResponse>> attach_async(const std::string& client_name);
  std::future<Result<LoadModuleResponse>> load_async(std::uint64_t session_id,
                                                     Bytes binary);
  std::future<Result<InvokeResponse>> invoke_async(const InvokeRequest& request);
  /// Fully non-blocking batch: chunks `requests` into INVOKE_BATCH frames,
  /// fires every chunk as a concurrent Fabric::send_async exchange and
  /// returns immediately; `on_complete` fires once per request (index +
  /// result) on the drain thread. The chunks EXECUTE concurrently but
  /// their callbacks are delivered in chunk-issue order (the drain thread
  /// is FIFO), so one slow early chunk delays delivery — not execution —
  /// of later ones; total completion time is still the slowest chunk. A
  /// chunk-level transport failure completes every index of that chunk
  /// with the error. Fails fast (without issuing anything) when not
  /// connected or the batch is empty.
  Status invoke_batch_async(const std::vector<InvokeRequest>& requests,
                            InvokeBatchCallback on_complete);

  /// `detail` asks the gateway to include its slow-invoke ring.
  Result<GatewayStats> stats(std::uint64_t session_id, bool detail = false);
  Status detach(std::uint64_t session_id);

  /// Names one ATTACH_BATCH frame carries; attach_all pipelines larger
  /// requests as concurrent chunk exchanges.
  static constexpr std::size_t kAttachBatchChunk = 32;
  /// Invocations one INVOKE_BATCH frame carries; invoke_all and
  /// invoke_batch_async pipeline larger batches as concurrent chunks.
  static constexpr std::size_t kInvokeBatchChunk = 32;

 private:
  Result<Bytes> call(ByteView request);
  /// Sleeps the jittered backoff for retry `attempt` (0-based).
  void backoff_sleep(int attempt);
  std::uint64_t next_jitter();

  /// One pending async exchange: the wire future plus the decode/fulfil
  /// step the drain thread runs when it lands.
  struct Completion {
    std::future<Result<Bytes>> wire;
    std::function<void(Result<Bytes>)> complete;
  };
  /// Hands a wire future to the drain thread (started lazily).
  void enqueue_completion(std::future<Result<Bytes>> wire,
                          std::function<void(Result<Bytes>)> complete);
  /// Drain loop: pops completions in issue order, waits for each wire
  /// exchange OUTSIDE the queue lock, runs the completion step. On stop it
  /// drains everything still queued before exiting, so no issued future
  /// or callback is ever abandoned.
  void drain_loop();
  /// Encodes `requests` as INVOKE_BATCH chunk frames (lane i == position
  /// within the chunk). Shared by invoke_all and invoke_batch_async.
  static std::vector<Bytes> invoke_chunk_frames(
      const std::vector<InvokeRequest>& requests);
  /// Maps one chunk's wire-level reply onto per-request results via
  /// `deliver(index_within_chunk, result)`.
  static void deliver_invoke_chunk(
      const Result<Bytes>& reply, std::size_t chunk_size,
      const std::function<void(std::size_t, Result<InvokeResponse>)>& deliver);

  net::Fabric& fabric_;
  std::uint64_t conn_ = 0;
  bool connected_ = false;
  BackoffConfig backoff_{};
  /// xorshift64 state; `this` decorrelates sibling clients' retry storms.
  std::uint64_t jitter_state_ =
      0x9E3779B97F4A7C15ull ^ reinterpret_cast<std::uint64_t>(this);

  /// Completion-drain machinery (see class comment for the thread model).
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::deque<Completion> completions_;
  bool drain_stop_ = false;
  std::thread drain_thread_;
};

}  // namespace watz::gateway
