// The attested execution gateway: a multi-tenant service layer in front of
// a fleet of WaTZ devices.
//
// The gateway binds two fabric endpoints:
//   * a client-facing dispatcher (GatewayConfig::port) speaking the framed
//     protocol of protocol.hpp;
//   * an RA endpoint (GatewayConfig::ra_port) where the gateway's
//     ra::Verifier listens and enrolled devices prove themselves — the
//     same four-message WaTZ protocol of SS IV, with the device's
//     *platform claim* (hash of its measured boot chain) as the claim.
//
// Amortisation happens in two layers, one per expensive path:
//   * SessionManager — the RA handshake runs once per (session, device)
//     and its verified evidence is cached until the policy (TTL or a
//     boot-count change) invalidates it;
//   * ModuleCache (one per device) — the Loading phase runs once per
//     (device, measurement); warm invokes reuse the prepared module or a
//     pooled instance outright.
//
// The dispatcher routes each invocation to the least-loaded device
// (minimum in-flight depth, then accumulated busy time) and keeps
// per-device queue-depth accounting for the stats endpoint.
#pragma once

#include <map>
#include <memory>

#include "core/device.hpp"
#include "gateway/module_cache.hpp"
#include "gateway/protocol.hpp"
#include "gateway/session_manager.hpp"
#include "ra/verifier.hpp"

namespace watz::gateway {

struct GatewayConfig {
  std::string hostname = "gateway";
  std::uint16_t port = 7000;     ///< client-facing dispatcher endpoint
  std::uint16_t ra_port = 7001;  ///< attestation endpoint devices prove to
  SessionPolicy session_policy{};
  ModuleCacheConfig cache{};
  /// Guest heap for invokes that do not specify one.
  std::size_t default_heap_bytes = 2 * 1024 * 1024;
  /// Normal-world budget for the LOAD_MODULE binary registry;
  /// least-recently-used binaries are dropped beyond it (clients re-upload
  /// on the resulting cold miss).
  std::size_t binary_registry_budget_bytes = 64 * 1024 * 1024;
};

class Gateway {
 public:
  Gateway(net::Fabric& fabric, GatewayConfig config, ByteView identity_seed);

  /// Binds the dispatcher and RA endpoints on the fabric.
  Status start();

  /// Enrols a device: endorses its attestation key, registers its platform
  /// claim as a reference value, and gives it a module cache. Re-enrolling
  /// the same hostname models a reboot/board swap: the boot count bumps,
  /// which invalidates every session's cached evidence for that device.
  Status add_device(core::Device& device);

  GatewayStats stats() const;
  SessionManager& sessions() noexcept { return sessions_; }
  ra::Verifier& verifier() noexcept { return *verifier_; }
  const crypto::EcPoint& identity() const noexcept { return verifier_->identity_key(); }
  const GatewayConfig& config() const noexcept { return config_; }

 private:
  struct Backend {
    core::Device* device = nullptr;
    std::unique_ptr<ModuleCache> cache;
    std::unique_ptr<crypto::Fortuna> attester_rng;
    crypto::Sha256Digest platform_claim{};
    std::uint64_t boot_count = 0;
    std::uint32_t inflight = 0;
    std::uint32_t queue_depth_peak = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t invocations = 0;
  };

  Result<Bytes> handle_request(ByteView request);
  Result<Bytes> handle_attach(ByteView request);
  Result<Bytes> handle_load_module(ByteView request);
  Result<Bytes> handle_invoke(ByteView request);
  Result<Bytes> handle_stats(ByteView request);
  Result<Bytes> handle_detach(ByteView request);

  /// Backends in least-loaded order: minimum in-flight depth, then
  /// accumulated busy time, then enrolment order. The dispatcher walks the
  /// list so a device that fails appraisal doesn't wedge the session while
  /// healthy devices sit idle.
  std::vector<Backend*> backends_by_load();

  /// Drives the attester side of the WaTZ protocol inside the device's TEE
  /// against this gateway's RA endpoint. The returned evidence has already
  /// been appraised by verifier_ en route.
  Result<attestation::Evidence> run_handshake(const std::string& hostname,
                                              Backend& backend);

  struct RegisteredBinary {
    Bytes bytes;
    std::uint64_t last_used = 0;
  };

  /// Returns the registered binary for `measurement`, or empty when never
  /// uploaded / already evicted.
  ByteView find_binary(const crypto::Sha256Digest& measurement);
  /// Inserts under the registry budget, evicting LRU binaries to fit.
  void register_binary(const crypto::Sha256Digest& measurement, Bytes binary);

  net::Fabric& fabric_;
  GatewayConfig config_;
  crypto::Fortuna rng_;  // must outlive verifier_, which holds a reference
  std::unique_ptr<ra::Verifier> verifier_;
  SessionManager sessions_;
  std::map<std::string, Backend> backends_;  // keyed by device hostname
  std::map<crypto::Sha256Digest, RegisteredBinary> binaries_;  // LOAD_MODULE registry
  std::size_t binaries_bytes_ = 0;
  std::uint64_t binaries_tick_ = 0;
  std::uint64_t invocations_ = 0;
  bool started_ = false;
};

/// Client-side convenience wrapper: frames requests, opens envelopes.
class GatewayClient {
 public:
  explicit GatewayClient(net::Fabric& fabric) : fabric_(fabric) {}
  ~GatewayClient() { close(); }
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  Status connect(const std::string& host, std::uint16_t port);
  void close();

  Result<AttachResponse> attach(const std::string& client_name);
  Result<LoadModuleResponse> load_module(std::uint64_t session_id, ByteView binary);
  Result<InvokeResponse> invoke(const InvokeRequest& request);
  Result<GatewayStats> stats(std::uint64_t session_id);
  Status detach(std::uint64_t session_id);

 private:
  Result<Bytes> call(ByteView request);

  net::Fabric& fabric_;
  std::uint64_t conn_ = 0;
  bool connected_ = false;
};

}  // namespace watz::gateway
