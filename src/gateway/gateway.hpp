// The attested execution gateway: a multi-tenant service layer in front of
// a fleet of WaTZ devices.
//
// The gateway binds two fabric endpoints:
//   * a client-facing dispatcher (GatewayConfig::port) speaking the framed
//     protocol of protocol.hpp;
//   * an RA endpoint (GatewayConfig::ra_port) where the gateway's
//     ra::Verifier listens and enrolled devices prove themselves — the
//     same four-message WaTZ protocol of SS IV, with the device's
//     *platform claim* (hash of its measured boot chain) as the claim.
//
// Amortisation happens in two layers, one per expensive path:
//   * SessionManager — the RA handshake runs once per (session, device)
//     and its verified evidence is cached until the policy (TTL or a
//     boot-count change) invalidates it;
//   * ModuleCache (one per device) — the Loading phase runs once per
//     (device, measurement); warm invokes reuse the prepared module or a
//     pooled instance outright.
//
// Execution model (see DESIGN.md §2 "Concurrency model"): every enrolled
// device is an actor. Its Backend owns a dedicated worker thread draining
// a bounded run queue; all TEE entry — handshakes and guest invokes — for
// that device happens on that one thread, so no device state is ever
// shared mutably. Dispatcher handlers run on the calling client's thread
// and only ADMIT work: they pick a backend by sampled two-choice load
// (queue depth, then busy time), enqueue a work item, and either wait for
// the result (INVOKE) or hand back a ticket (SUBMIT/POLL). When every
// eligible queue is at its bound the request is bounced with QUEUE_FULL
// backpressure instead of being admitted unbounded.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/device.hpp"
#include "gateway/module_cache.hpp"
#include "gateway/protocol.hpp"
#include "gateway/session_manager.hpp"
#include "ra/verifier.hpp"

namespace watz::gateway {

struct GatewayConfig {
  std::string hostname = "gateway";
  std::uint16_t port = 7000;     ///< client-facing dispatcher endpoint
  std::uint16_t ra_port = 7001;  ///< attestation endpoint devices prove to
  SessionPolicy session_policy{};
  ModuleCacheConfig cache{};
  /// Guest heap for invokes that do not specify one.
  std::size_t default_heap_bytes = 2 * 1024 * 1024;
  /// Normal-world budget for the LOAD_MODULE binary registry;
  /// least-recently-used binaries are dropped beyond it (clients re-upload
  /// on the resulting cold miss).
  std::size_t binary_registry_budget_bytes = 64 * 1024 * 1024;
  /// Bound of each backend's run queue (queued + executing work items).
  /// INVOKE/SUBMIT admission past it answers QUEUE_FULL.
  std::size_t worker_queue_capacity = 64;
};

class Gateway {
 public:
  Gateway(net::Fabric& fabric, GatewayConfig config, ByteView identity_seed);
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds the dispatcher and RA endpoints on the fabric.
  Status start();

  /// Enrols a device: endorses its attestation key, registers its platform
  /// claim as a reference value, gives it a module cache and starts its
  /// worker thread. Re-enrolling the same hostname models a reboot/board
  /// swap: the boot count bumps, which invalidates every session's cached
  /// evidence for that device (the worker survives the reboot).
  Status add_device(core::Device& device);

  GatewayStats stats();
  SessionManager& sessions() noexcept { return sessions_; }
  ra::Verifier& verifier() noexcept { return *verifier_; }
  const crypto::EcPoint& identity() const noexcept { return verifier_->identity_key(); }
  const GatewayConfig& config() const noexcept { return config_; }

 private:
  /// One enrolled device: an actor with a dedicated worker thread. Only
  /// that thread enters the device's TEE (handshakes + invokes); the
  /// dispatcher threads merely enqueue.
  struct Backend {
    std::string hostname;         ///< immutable after first enrolment
    std::size_t enrol_index = 0;  ///< stable placement tie-break

    /// Re-enrolment swaps these under state_mu; workers snapshot them so
    /// a mid-flight invoke keeps the pre-reboot cache (and, on a board
    /// swap, the pre-swap device) alive instead of racing the swap.
    std::mutex state_mu;
    core::Device* device = nullptr;
    std::shared_ptr<ModuleCache> cache;
    std::shared_ptr<crypto::Fortuna> attester_rng;
    crypto::Sha256Digest platform_claim{};
    std::uint64_t boot_count = 0;

    /// Bounded MPSC run queue: any dispatcher thread posts, the one worker
    /// drains. inflight counts queued + executing and is what admission
    /// bounds and placement compares.
    std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;
    std::thread worker;

    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint32_t> queue_depth_peak{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> invocations{0};
  };

  Result<Bytes> handle_request(std::uint64_t conn, ByteView request);
  Result<Bytes> handle_attach(std::uint64_t conn, ByteView request);
  Result<Bytes> handle_load_module(ByteView request);
  Result<Bytes> handle_invoke(ByteView request);
  Result<Bytes> handle_submit(ByteView request);
  Result<Bytes> handle_poll(ByteView request);
  Result<Bytes> handle_stats(ByteView request);
  Result<Bytes> handle_detach(ByteView request);

  /// Fabric close hook for the dispatcher endpoint: a client that drops
  /// its connection implicitly detaches every session it attached over it,
  /// failing that session's queued work instead of racing it.
  void on_client_close(std::uint64_t conn);
  /// Detach + unlink the conn mapping. `drop_tickets` additionally purges
  /// the session's pending SUBMIT tickets: set on connection loss (nobody
  /// is left to poll them), clear on explicit DETACH so the client can
  /// still redeem the failures of its drained work items.
  bool detach_session(std::uint64_t session_id, bool drop_tickets);

  /// Placement candidates, best first: a sampled two-choice pick (lower
  /// queue depth, then lower accumulated busy time, then enrolment order)
  /// followed by the remaining backends as spill-over, so a device that
  /// fails appraisal or a full queue doesn't wedge the request. O(1)
  /// comparisons in the common case — no per-request sort.
  std::vector<Backend*> placement_candidates();

  /// Enqueues a work item on the backend's run queue. Fails QUEUE_FULL at
  /// the bound unless `force` (control-plane items: attach attestation).
  Status post(Backend& backend, std::function<void()> task, bool force = false);
  void worker_loop(Backend& backend);

  /// The INVOKE work item body. Runs ON the backend's worker thread:
  /// attests the session if needed, acquires a cached instance, invokes,
  /// and releases clean exits back to the warm pool.
  Result<InvokeResponse> execute_invoke(Backend& backend, const SessionPtr& session,
                                        const InvokeRequest& request);

  /// Admits an invoke to the best backend and returns its future, walking
  /// spill-over candidates past full queues. On total backpressure returns
  /// a QUEUE_FULL error. `sync` also re-admits to the next candidate when
  /// a device fails appraisal (the async path reports the failure through
  /// the ticket instead).
  Result<InvokeResponse> dispatch_invoke_sync(const SessionPtr& session,
                                              const InvokeRequest& request);

  /// Posts an invoke work item to `backend` and returns the future its
  /// worker will fulfil (QUEUE_FULL Status at the admission bound).
  /// Shared by the sync INVOKE and async SUBMIT paths.
  Result<std::future<Result<InvokeResponse>>> post_invoke(
      Backend& backend, const SessionPtr& session, const InvokeRequest& request);

  /// Drives the attester side of the WaTZ protocol inside the device's TEE
  /// against this gateway's RA endpoint. Runs on the backend's worker
  /// thread. The returned evidence has already been appraised by verifier_
  /// en route.
  Result<attestation::Evidence> run_handshake(Backend& backend);

  struct RegisteredBinary {
    Bytes bytes;
    std::uint64_t last_used = 0;
  };

  /// Copies the registered binary for `measurement` out of the registry
  /// (empty when never uploaded / already evicted). A copy, not a view:
  /// the worker consuming it must not race registry eviction.
  Bytes copy_binary(const crypto::Sha256Digest& measurement);
  /// Inserts under the registry budget, evicting LRU binaries to fit.
  /// Caller holds binaries_mu_.
  void register_binary(const crypto::Sha256Digest& measurement, Bytes binary);

  net::Fabric& fabric_;
  GatewayConfig config_;
  crypto::Fortuna rng_;  // must outlive verifier_, which holds a reference
  std::unique_ptr<ra::Verifier> verifier_;
  /// Serialises the shared verifier: RA-endpoint messages arrive from
  /// every backend worker concurrently during parallel attach.
  std::mutex ra_mu_;
  SessionManager sessions_;

  mutable std::mutex backends_mu_;  // guards backends_ / backend_order_ shape
  std::map<std::string, Backend> backends_;  // keyed by device hostname
  std::vector<Backend*> backend_order_;      // enrolment order (stable ptrs)
  std::atomic<std::uint64_t> placement_tick_{0};

  std::mutex binaries_mu_;  // guards the LOAD_MODULE registry
  std::map<crypto::Sha256Digest, RegisteredBinary> binaries_;
  std::size_t binaries_bytes_ = 0;
  std::uint64_t binaries_tick_ = 0;

  /// SUBMIT tickets awaiting POLL.
  struct PendingInvoke {
    std::uint64_t session_id = 0;
    std::future<Result<InvokeResponse>> result;
  };
  std::mutex pending_mu_;
  std::map<std::uint64_t, PendingInvoke> pending_;
  std::atomic<std::uint64_t> next_ticket_{1};

  std::mutex conn_mu_;  // guards conn_sessions_
  std::map<std::uint64_t, std::vector<std::uint64_t>> conn_sessions_;

  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::uint64_t> queue_full_rejections_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

/// Client-side convenience wrapper: frames requests, opens envelopes.
/// One instance per client thread — the wrapper itself is not locked, but
/// any number of GatewayClients may drive the same gateway concurrently.
class GatewayClient {
 public:
  explicit GatewayClient(net::Fabric& fabric) : fabric_(fabric) {}
  ~GatewayClient() { close(); }
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  Status connect(const std::string& host, std::uint16_t port);
  void close();

  Result<AttachResponse> attach(const std::string& client_name);
  Result<LoadModuleResponse> load_module(std::uint64_t session_id, ByteView binary);
  Result<InvokeResponse> invoke(const InvokeRequest& request);
  /// Async pair: submit returns a ticket immediately (or QUEUE_FULL, see
  /// is_queue_full); poll redeems it.
  Result<SubmitResponse> submit(const InvokeRequest& request);
  Result<PollResponse> poll(std::uint64_t session_id, std::uint64_t ticket);
  /// Pipelined batch: keeps up to the gateway's admission bound in flight
  /// via SUBMIT, absorbing QUEUE_FULL backpressure by draining completed
  /// tickets, and returns one result per request, in order.
  std::vector<Result<InvokeResponse>> invoke_batch(
      const std::vector<InvokeRequest>& requests);
  Result<GatewayStats> stats(std::uint64_t session_id);
  Status detach(std::uint64_t session_id);

 private:
  Result<Bytes> call(ByteView request);

  net::Fabric& fabric_;
  std::uint64_t conn_ = 0;
  bool connected_ = false;
};

}  // namespace watz::gateway
