#include "gateway/gateway.hpp"

#include <algorithm>

#include "hw/clock.hpp"
#include "ra/attester.hpp"

namespace watz::gateway {

namespace {

/// The platform claim a device attests to: the hash of its measured boot
/// chain (SPL, U-Boot/ATF, trusted OS), i.e. what a measured-boot TPM
/// would have accumulated by the time the runtime is up.
crypto::Sha256Digest platform_claim(core::Device& device) {
  crypto::Sha256 hasher;
  for (const crypto::Sha256Digest& stage : device.os().boot_report().measurements)
    hasher.update(stage);
  return hasher.finish();
}

}  // namespace

Gateway::Gateway(net::Fabric& fabric, GatewayConfig config, ByteView identity_seed)
    : fabric_(fabric),
      config_(std::move(config)),
      rng_(identity_seed),
      sessions_(config_.session_policy) {
  verifier_ = std::make_unique<ra::Verifier>(crypto::ecdsa_keygen(rng_), rng_);
  // The blob msg3 provisions: a gateway session ticket. The appraisal side
  // effects (endorsement, reference value, MAC and signature checks) are
  // what the handshake is run for.
  verifier_->set_secret_provider(
      [](const crypto::Sha256Digest&) { return to_bytes("watz-gateway-ticket-v1"); });
}

Status Gateway::start() {
  if (started_) return Status::err("gateway: already started");

  // RA endpoint: the gateway's verifier, appraising devices.
  Status ra = fabric_.listen(
      config_.hostname, config_.ra_port,
      [this](std::uint64_t conn, ByteView message) -> Result<Bytes> {
        return verifier_->handle(conn, message);
      },
      [this](std::uint64_t conn) { verifier_->end_session(conn); });
  if (!ra.ok()) return ra;

  // Client-facing dispatcher. Application failures travel inside the
  // response envelope; the transport only fails on malformed frames.
  Status dispatcher = fabric_.listen(
      config_.hostname, config_.port,
      [this](std::uint64_t, ByteView request) -> Result<Bytes> {
        auto response = handle_request(request);
        return response.ok() ? std::move(*response) : err_envelope(response.error());
      });
  if (!dispatcher.ok()) return dispatcher;

  started_ = true;
  return {};
}

Status Gateway::add_device(core::Device& device) {
  Backend& backend = backends_[device.hostname()];
  backend.device = &device;
  backend.cache = std::make_unique<ModuleCache>(device.runtime(), config_.cache);
  backend.attester_rng = std::make_unique<crypto::Fortuna>(
      device.os().huk_subkey_derive("watz-gateway-attester-v1"));
  backend.platform_claim = platform_claim(device);
  ++backend.boot_count;  // re-enrolment == reboot: cached evidence goes stale
  backend.inflight = 0;

  verifier_->endorse_device(device.attestation_service().public_key());
  verifier_->add_reference_measurement(backend.platform_claim);
  return {};
}

Result<attestation::Evidence> Gateway::run_handshake(const std::string& hostname,
                                                     Backend& backend) {
  using Ev = Result<attestation::Evidence>;
  core::Device& device = *backend.device;
  // The attester state machine runs inside the device's TEE; its socket
  // calls are relayed by the supplicant across the fabric to the gateway's
  // RA endpoint (exactly the SS V deployment, with the gateway as relying
  // party).
  return device.monitor().smc_call([&]() -> Ev {
    optee::Supplicant* supplicant = device.os().supplicant();
    if (!supplicant) return Ev::err("gateway: " + hostname + ": no supplicant");

    ra::AttesterSession attester(*backend.attester_rng, verifier_->identity_key());
    auto conn = supplicant->socket_connect(config_.hostname, config_.ra_port);
    if (!conn.ok()) return Ev::err(conn.error());
    struct CloseGuard {
      optee::Supplicant* s;
      std::uint32_t handle;
      ~CloseGuard() { s->socket_close(handle); }
    } guard{supplicant, *conn};

    auto msg1 = supplicant->socket_send_recv(*conn, attester.make_msg0());
    if (!msg1.ok()) return Ev::err(msg1.error());

    attestation::Evidence evidence;
    auto msg2 = attester.handle_msg1(
        *msg1, [&](const std::array<std::uint8_t, 32>& anchor) {
          evidence = device.attestation_service().issue_evidence(
              anchor, backend.platform_claim);
          return evidence;
        });
    if (!msg2.ok()) return Ev::err(msg2.error());

    auto msg3 = supplicant->socket_send_recv(*conn, *msg2);
    if (!msg3.ok()) return Ev::err(msg3.error());  // verifier rejected the device
    auto ticket = attester.handle_msg3(*msg3);
    if (!ticket.ok()) return Ev::err(ticket.error());
    return evidence;
  });
}

std::vector<Gateway::Backend*> Gateway::backends_by_load() {
  std::vector<Backend*> order;
  order.reserve(backends_.size());
  for (auto& [name, backend] : backends_) order.push_back(&backend);
  std::stable_sort(order.begin(), order.end(), [](const Backend* a, const Backend* b) {
    return a->inflight != b->inflight ? a->inflight < b->inflight
                                      : a->busy_ns < b->busy_ns;
  });
  return order;
}

Result<Bytes> Gateway::handle_request(ByteView request) {
  auto op = peek_op(request);
  if (!op.ok()) return Result<Bytes>::err(op.error());
  switch (*op) {
    case Op::Attach: return handle_attach(request);
    case Op::LoadModule: return handle_load_module(request);
    case Op::Invoke: return handle_invoke(request);
    case Op::Stats: return handle_stats(request);
    case Op::Detach: return handle_detach(request);
  }
  return Result<Bytes>::err("gateway: unknown opcode");
}

Result<Bytes> Gateway::handle_attach(ByteView request) {
  auto req = AttachRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (backends_.empty()) return Result<Bytes>::err("gateway: no devices enrolled");

  const std::uint64_t now = hw::monotonic_ns();
  Session& session = sessions_.attach(req->client, now);

  // Attest the whole fleet up front so invokes on this session are RA-free
  // until the policy invalidates the evidence.
  AttachResponse resp;
  resp.session_id = session.id;
  std::string last_error;
  for (auto& [name, backend] : backends_) {
    auto exchanges = sessions_.ensure_attested(
        session, name, backend.boot_count, now,
        [&]() { return run_handshake(name, backend); });
    if (!exchanges.ok()) {
      last_error = exchanges.error();
      continue;
    }
    ++resp.devices_attested;
    resp.ra_exchanges += *exchanges;
  }
  if (resp.devices_attested == 0) {
    sessions_.detach(session.id);
    return Result<Bytes>::err("gateway: no device passed appraisal: " + last_error);
  }
  return ok_envelope(resp.encode());
}

Result<Bytes> Gateway::handle_load_module(ByteView request) {
  auto req = LoadModuleRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!sessions_.find(req->session_id))
    return Result<Bytes>::err("gateway: unknown session");

  LoadModuleResponse resp;
  resp.measurement = crypto::sha256(req->binary);
  resp.already_registered = binaries_.contains(resp.measurement);
  if (!resp.already_registered)
    register_binary(resp.measurement, std::move(req->binary));
  return ok_envelope(resp.encode());
}

Result<Bytes> Gateway::handle_invoke(ByteView request) {
  auto req = InvokeRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  Session* session = sessions_.find(req->session_id);
  if (!session) return Result<Bytes>::err("gateway: unknown session");

  // Trust first: the session must hold fresh evidence for the device the
  // invocation lands on (free when cached; a TTL/boot-count miss re-runs
  // the handshake). A device failing appraisal is skipped in favour of the
  // next least-loaded one rather than wedging the session.
  Backend* backend = nullptr;
  std::uint32_t ra_exchanges = 0;
  std::string last_error = "gateway: no devices enrolled";
  for (Backend* candidate : backends_by_load()) {
    const std::string& name = candidate->device->hostname();
    auto exchanges = sessions_.ensure_attested(
        *session, name, candidate->boot_count, hw::monotonic_ns(),
        [&]() { return run_handshake(name, *candidate); });
    if (!exchanges.ok()) {
      last_error = exchanges.error();
      continue;
    }
    backend = candidate;
    ra_exchanges = *exchanges;
    break;
  }
  if (!backend) return Result<Bytes>::err(last_error);
  const std::string& hostname = backend->device->hostname();

  ++backend->inflight;
  backend->queue_depth_peak = std::max(backend->queue_depth_peak, backend->inflight);
  struct Depart {
    Backend* b;
    ~Depart() { --b->inflight; }
  } depart{backend};

  const ByteView binary = find_binary(req->measurement);
  core::AppConfig app_config;
  app_config.heap_bytes =
      req->heap_bytes ? static_cast<std::size_t>(req->heap_bytes)
                      : config_.default_heap_bytes;
  auto lease = backend->cache->acquire(req->measurement, binary, app_config);
  if (!lease.ok()) return Result<Bytes>::err(lease.error());

  const std::uint64_t t0 = hw::monotonic_ns();
  auto result = lease->app->invoke(req->entry, req->args);
  const std::uint64_t invoke_ns = hw::monotonic_ns() - t0;

  backend->busy_ns += lease->launch_ns + invoke_ns;
  ++backend->invocations;
  ++invocations_;
  ++session->invocations;

  if (!result.ok()) return Result<Bytes>::err("gateway: " + result.error());
  // Only clean exits go back to the warm pool; trapped instances are torn
  // down with their sandbox state.
  backend->cache->release(std::move(lease->app));

  InvokeResponse resp;
  resp.results = std::move(*result);
  resp.device = hostname;
  resp.module_cache_hit = lease->module_cache_hit;
  resp.pool_hit = lease->pool_hit;
  resp.launch_ns = lease->launch_ns;
  resp.invoke_ns = invoke_ns;
  resp.ra_exchanges = ra_exchanges;
  return ok_envelope(resp.encode());
}

ByteView Gateway::find_binary(const crypto::Sha256Digest& measurement) {
  const auto it = binaries_.find(measurement);
  if (it == binaries_.end()) return {};
  it->second.last_used = ++binaries_tick_;
  return it->second.bytes;
}

void Gateway::register_binary(const crypto::Sha256Digest& measurement, Bytes binary) {
  // The normal-world registry is budgeted like the secure-side caches:
  // least-recently-used binaries are dropped to make room (an evicted
  // binary simply has to be re-uploaded before its next cold miss).
  while (!binaries_.empty() &&
         binaries_bytes_ + binary.size() > config_.binary_registry_budget_bytes) {
    auto victim = binaries_.begin();
    for (auto it = binaries_.begin(); it != binaries_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    binaries_bytes_ -= victim->second.bytes.size();
    binaries_.erase(victim);
  }
  binaries_bytes_ += binary.size();
  binaries_.emplace(measurement,
                    RegisteredBinary{std::move(binary), ++binaries_tick_});
}

Result<Bytes> Gateway::handle_stats(ByteView request) {
  auto req = StatsRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!sessions_.find(req->session_id))
    return Result<Bytes>::err("gateway: unknown session");
  return ok_envelope(stats().encode());
}

Result<Bytes> Gateway::handle_detach(ByteView request) {
  auto req = DetachRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!sessions_.detach(req->session_id))
    return Result<Bytes>::err("gateway: unknown session");
  return ok_envelope({});
}

GatewayStats Gateway::stats() const {
  GatewayStats stats;
  stats.sessions_active = sessions_.active();
  stats.sessions_total = sessions_.sessions_total();
  stats.handshakes_run = sessions_.handshakes_run();
  stats.handshakes_reused = sessions_.handshakes_reused();
  stats.modules_registered = binaries_.size();
  stats.invocations = invocations_;
  for (const auto& [name, backend] : backends_) {
    DeviceStats d;
    d.hostname = name;
    d.boot_count = backend.boot_count;
    d.invocations = backend.invocations;
    d.busy_ns = backend.busy_ns;
    d.queue_depth_peak = backend.queue_depth_peak;
    d.secure_heap_in_use = backend.device->os().heap_in_use();
    d.cache_hits = backend.cache->hits();
    d.cache_misses = backend.cache->misses();
    d.cache_evictions = backend.cache->evictions();
    d.pool_hits = backend.cache->pool_hits();
    stats.devices.push_back(std::move(d));
  }
  return stats;
}

// -- GatewayClient -----------------------------------------------------------

Status GatewayClient::connect(const std::string& host, std::uint16_t port) {
  auto conn = fabric_.connect(host, port);
  if (!conn.ok()) return Status::err(conn.error());
  conn_ = *conn;
  connected_ = true;
  return {};
}

void GatewayClient::close() {
  if (connected_) fabric_.close(conn_);
  connected_ = false;
}

Result<Bytes> GatewayClient::call(ByteView request) {
  if (!connected_) return Result<Bytes>::err("gateway client: not connected");
  auto response = fabric_.send_recv(conn_, request);
  if (!response.ok()) return response;
  return open_envelope(*response);
}

Result<AttachResponse> GatewayClient::attach(const std::string& client_name) {
  auto payload = call(AttachRequest{client_name}.encode());
  if (!payload.ok()) return Result<AttachResponse>::err(payload.error());
  return AttachResponse::decode(*payload);
}

Result<LoadModuleResponse> GatewayClient::load_module(std::uint64_t session_id,
                                                      ByteView binary) {
  LoadModuleRequest request;
  request.session_id = session_id;
  request.binary.assign(binary.begin(), binary.end());
  auto payload = call(request.encode());
  if (!payload.ok()) return Result<LoadModuleResponse>::err(payload.error());
  return LoadModuleResponse::decode(*payload);
}

Result<InvokeResponse> GatewayClient::invoke(const InvokeRequest& request) {
  auto payload = call(request.encode());
  if (!payload.ok()) return Result<InvokeResponse>::err(payload.error());
  return InvokeResponse::decode(*payload);
}

Result<GatewayStats> GatewayClient::stats(std::uint64_t session_id) {
  auto payload = call(StatsRequest{session_id}.encode());
  if (!payload.ok()) return Result<GatewayStats>::err(payload.error());
  return GatewayStats::decode(*payload);
}

Status GatewayClient::detach(std::uint64_t session_id) {
  auto payload = call(DetachRequest{session_id}.encode());
  return payload.ok() ? Status{} : Status::err(payload.error());
}

}  // namespace watz::gateway
