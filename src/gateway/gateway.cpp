#include "gateway/gateway.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "hw/clock.hpp"
#include "ra/attester.hpp"
#include "wasm/jit/jit.hpp"

namespace watz::gateway {

namespace {

/// The platform claim a device attests to: the hash of its measured boot
/// chain (SPL, U-Boot/ATF, trusted OS), i.e. what a measured-boot TPM
/// would have accumulated by the time the runtime is up.
crypto::Sha256Digest platform_claim(core::Device& device) {
  crypto::Sha256 hasher;
  for (const crypto::Sha256Digest& stage : device.os().boot_report().measurements)
    hasher.update(stage);
  return hasher.finish();
}

bool is_appraisal_failure(const std::string& error) {
  return error.find("failed appraisal") != std::string::npos;
}

/// The semantic identity of one invocation: measurement + entry + args +
/// heap reservation. Two requests with equal keys run the same function on
/// the same module with the same inputs — what both the INVOKE_BATCH rider
/// machinery and the SUBMIT result memo deduplicate on.
std::string invoke_dedup_key(const InvokeRequest& invoke) {
  std::string key(invoke.measurement.begin(), invoke.measurement.end());
  key += invoke.entry;
  key.push_back('\0');
  for (const wasm::Value& v : invoke.args) {
    key.push_back(static_cast<char>(v.type));
    key.append(reinterpret_cast<const char*>(&v.bits), sizeof(v.bits));
  }
  key.append(reinterpret_cast<const char*>(&invoke.heap_bytes),
             sizeof(invoke.heap_bytes));
  return key;
}

}  // namespace

Gateway::Gateway(net::Fabric& fabric, GatewayConfig config, ByteView identity_seed)
    : fabric_(fabric),
      config_(std::move(config)),
      rng_(identity_seed),
      sessions_(config_.session_policy) {
  ra::ShardedVerifierConfig shard_config;
  shard_config.shards = config_.ra_shards;
  shard_config.policy.session_key_reuse = config_.ra_session_key_reuse;
  shard_config.appraisal_latency_ns = config_.ra_appraisal_latency_ns;
  verifier_ = std::make_unique<ra::ShardedVerifier>(crypto::ecdsa_keygen(rng_),
                                                    identity_seed, shard_config);
  // The blob msg3 provisions: a gateway session ticket. The appraisal side
  // effects (endorsement, reference value, MAC and signature checks) are
  // what the handshake is run for.
  verifier_->set_secret_provider(
      [](const crypto::Sha256Digest&) { return to_bytes("watz-gateway-ticket-v1"); });
}

Gateway::~Gateway() {
  // Unbind from the fabric FIRST so no new request can reach a handler
  // capturing a dying `this` (clients that outlive the gateway then get
  // "peer gone" instead of a dangling callback), then retire the renewal
  // sweeper (it posts control-lane items), then drain the slot workers.
  if (started_) {
    fabric_.unlisten(config_.hostname, config_.port);
    fabric_.unlisten(config_.hostname, config_.ra_port);
  }
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(renew_mu_);
    renew_stop_ = true;
  }
  renew_cv_.notify_all();
  if (renew_thread_.joinable()) renew_thread_.join();
  for (auto& [name, backend] : backends_) {
    for (auto& slot : backend.slots) {
      {
        std::lock_guard<std::mutex> lock(slot->queue_mu);
        slot->stop = true;
      }
      slot->queue_cv.notify_all();
      if (slot->worker.joinable()) slot->worker.join();
    }
  }
}

Status Gateway::start() {
  if (started_) return Status::err("gateway: already started");

  // RA endpoint: the gateway's sharded verifier, appraising devices.
  // Handshakes arrive concurrently from every backend worker; each routes
  // to its session's shard and locks only that shard, so the fleet
  // appraises in parallel (batch frames fan one device's lanes out too).
  Status ra = fabric_.listen(
      config_.hostname, config_.ra_port,
      [this](std::uint64_t conn, ByteView message) -> Result<Bytes> {
        return verifier_->handle(conn, message);
      },
      [this](std::uint64_t conn) { verifier_->end_session(conn); });
  if (!ra.ok()) return ra;

  // Client-facing dispatcher. Application failures travel inside the
  // response envelope; the transport only fails on malformed frames. The
  // close hook detaches every session attached over the dropped
  // connection, failing its queued work before its state goes away.
  Status dispatcher = fabric_.listen(
      config_.hostname, config_.port,
      [this](std::uint64_t conn, ByteView request) -> Result<Bytes> {
        auto response = handle_request(conn, request);
        return response.ok() ? std::move(*response) : err_envelope(response.error());
      },
      [this](std::uint64_t conn) { on_client_close(conn); });
  if (!dispatcher.ok()) return dispatcher;

  // The background sweeper runs when evidence renewal has a finite TTL to
  // stay ahead of (an infinite TTL never goes stale) and/or JIT tiering
  // needs its compile pump (only where the host can actually run native
  // code — elsewhere the heat counters never queue anything).
  const bool renew_evidence = config_.evidence_renewal &&
                              config_.session_policy.evidence_ttl_ns != ~0ull;
  const bool pump_tiering = config_.jit_tiering && wasm::jit::jit_available();
  if ((renew_evidence || pump_tiering || config_.module_prewarm) &&
      !renew_thread_.joinable())
    renew_thread_ = std::thread([this] { renewal_loop(); });

  started_ = true;
  return {};
}

Status Gateway::add_device(core::Device& device) {
  const std::size_t pool = config_.slots_per_device ? config_.slots_per_device : 1;
  Backend* backend = nullptr;
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    backend = &backends_[device.hostname()];
    fresh = backend->hostname.empty();
    if (fresh) {
      backend->hostname = device.hostname();
      backend->enrol_index = backend_order_.size();
      backend_order_.push_back(backend);
      backend->slots.reserve(pool);
      for (std::size_t i = 0; i < pool; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->backend = backend;
        slot->index = i;
        slot->global_id = slot_order_.size();
        slot_order_.push_back(slot.get());
        backend->slots.push_back(std::move(slot));
      }
    }
  }
  {
    // Re-enrolment == reboot/board swap: swap in the (possibly new) device
    // plus a fresh control (slot monitors), cache + attester RNG, and bump
    // the boot count so cached evidence goes stale. Workers snapshot all
    // of these under state_mu, so an invoke mid-flight across the
    // "reboot" finishes on the old device + cache + monitors instead of
    // racing the swap.
    std::lock_guard<std::mutex> lock(backend->state_mu);
    backend->device = &device;
    backend->control = std::make_shared<core::DeviceControl>(device, pool);
    // The warm pool hands instances out per slot; widen the per-module
    // pool so every slot can park one (0 stays 0: pooling disabled).
    ModuleCacheConfig cache_config = config_.cache;
    cache_config.max_pool_per_module =
        cache_config.max_pool_per_module
            ? std::max(cache_config.max_pool_per_module, pool)
            : 0;
    // Fleet tiering knobs reach the device runtime BEFORE any module is
    // prepared through the fresh cache (TierSets are built at prepare()
    // time). jit_available() gates inside the runtime, so this is a no-op
    // on non-x86-64 hosts / WATZ_DISABLE_JIT.
    device.runtime().set_jit_options(
        core::JitTierOptions{config_.jit_tiering, config_.jit_hot_calls});
    backend->cache = std::make_shared<ModuleCache>(device.runtime(), cache_config);
    backend->cache->bind_tier_metrics(&tier_up_compiles_, &native_entries_,
                                      &jit_fallback_ops_, &tier_compile_ns_hist_,
                                      &jit_fallback_float_, &jit_fallback_conv_,
                                      &jit_fallback_call_, &jit_fallback_other_);
    backend->attester_rng = std::make_shared<crypto::Fortuna>(
        device.os().huk_subkey_derive("watz-gateway-attester-v1"));
    backend->platform_claim = platform_claim(device);
    ++backend->boot_count;

    // Wire this enrolment into the metrics plane. The registry hands out
    // stable addresses, so the monitors and the per-device histogram
    // pointer stay valid across re-enrolments; the cache/heap links are
    // re-pointed because a reboot swaps in fresh instances.
    device.monitor().set_transition_histograms(&stage_tee_entry_hist_,
                                               &stage_tee_exit_hist_);
    for (std::size_t i = 0; i < pool; ++i)
      backend->control->slot(i).monitor().set_transition_histograms(
          &stage_tee_entry_hist_, &stage_tee_exit_hist_);
    const std::string prefix = "device." + backend->hostname + ".";
    if (backend->queue_delay_hist == nullptr)
      backend->queue_delay_hist = &registry_.histogram(prefix + "queue_delay");
    const ModuleCache& cache = *backend->cache;
    registry_.link_counter(prefix + "cache.hits", &cache.hits_counter());
    registry_.link_counter(prefix + "cache.misses", &cache.misses_counter());
    registry_.link_counter(prefix + "cache.evictions", &cache.evictions_counter());
    registry_.link_counter(prefix + "cache.pool_hits", &cache.pool_hits_counter());
    registry_.link_counter(prefix + "cache.prewarms", &cache.prewarms_counter());
    registry_.link_gauge(prefix + "cache.charged_bytes",
                         &cache.charged_bytes_gauge());
    registry_.link_gauge(prefix + "heap_in_use", &device.os().heap_gauge());
  }
  if (fresh)
    for (auto& slot : backend->slots)
      slot->worker = std::thread([this, s = slot.get()] { worker_loop(*s); });

  // Broadcast to every shard (ShardedVerifier locks one shard at a time).
  verifier_->endorse_device(device.attestation_service().public_key());
  verifier_->add_reference_measurement(backend->platform_claim);
  return {};
}

// -- worker fabric -----------------------------------------------------------

Status Gateway::post(Slot& slot, std::function<void(std::uint64_t)> task,
                     bool force) {
  {
    std::lock_guard<std::mutex> lock(slot.queue_mu);
    if (slot.stop) return Status::err("gateway: shutting down");
    const std::uint32_t depth = slot.inflight.load(std::memory_order_relaxed);
    if (!force && depth >= config_.worker_queue_capacity) {
      slot.queue_full_rejections.add();
      return Status::err(std::string(kQueueFullPrefix) + ": " +
                         slot.backend->hostname + "#" + std::to_string(slot.index) +
                         " run queue at capacity (" + std::to_string(depth) + ")");
    }
    const std::uint32_t now_inflight = depth + 1;
    slot.inflight.store(now_inflight, std::memory_order_relaxed);
    std::uint32_t peak = slot.queue_depth_peak.load(std::memory_order_relaxed);
    while (now_inflight > peak &&
           !slot.queue_depth_peak.compare_exchange_weak(peak, now_inflight)) {
    }
    // Admission timestamp: the worker measures pickup - admission as the
    // item's queueing delay (the STATS percentiles and the per-response
    // queue_delay_ns both come from this stamp).
    slot.queue.push_back(Slot::WorkItem{hw::monotonic_ns(), std::move(task)});
  }
  slot.queue_cv.notify_one();
  return {};
}

void Gateway::worker_loop(Slot& slot) {
  for (;;) {
    Slot::WorkItem item;
    {
      std::unique_lock<std::mutex> lock(slot.queue_mu);
      slot.queue_cv.wait(lock, [&] { return slot.stop || !slot.queue.empty(); });
      if (slot.queue.empty()) return;  // stop requested and queue drained
      item = std::move(slot.queue.front());
      slot.queue.pop_front();
    }
    const std::uint64_t now = hw::monotonic_ns();
    const std::uint64_t delay =
        now > item.admitted_ns ? now - item.admitted_ns : 0;
    queue_delay_hist_.record(delay);
    if (slot.backend->queue_delay_hist != nullptr)
      slot.backend->queue_delay_hist->record(delay);
    // On shutdown the loop still drains every queued item: each one
    // observes stopping_ and fails fast, fulfilling its promise so no
    // admitted request is ever left dangling. Each task decrements
    // inflight itself, just BEFORE publishing its result — so admission
    // capacity is provably free by the time a waiter observes completion
    // (decrementing here, after the task, would let a hot client see the
    // completion and get bounced before this thread is rescheduled).
    item.run(delay);
  }
}

std::uint64_t Gateway::maybe_trace(std::uint64_t wire_trace_id) {
  // A client-supplied id always wins: the caller is stitching this request
  // into a trace it owns (batch lanes, cross-service correlation).
  if (wire_trace_id != 0) return wire_trace_id;
  const std::uint64_t n = config_.trace_sample_n;
  if (n == 0) return 0;
  return trace_tick_.fetch_add(1, std::memory_order_relaxed) % n == 0
             ? obs::next_trace_id()
             : 0;
}

void Gateway::record_slow_invoke(SlowInvoke entry) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  if (slow_invokes_.size() >= kSlowInvokeRing) slow_invokes_.pop_front();
  slow_invokes_.push_back(std::move(entry));
}

std::uint64_t Gateway::placement_cost(const Slot& slot) {
  // Predicted completion of one more admission: every item ahead of it
  // (queued + executing) plus itself, each costing the slot's observed
  // EWMA service time. Bounded: depth <= queue capacity, EWMA < minutes,
  // no overflow.
  const std::uint64_t depth = slot.inflight.load(std::memory_order_relaxed);
  const std::uint64_t ewma = slot.ewma_invoke_ns.load(std::memory_order_relaxed);
  if (ewma == 0) {
    // Unsampled slot: probe it ahead of anything measured — but only
    // with a couple of items. No sample can land until the first probe
    // completes, so unbounded optimism would let one batch admission
    // pass pile lanes onto a fresh (possibly slow) board up to the whole
    // queue bound. Past the probes it scores as a middling ~1 ms board
    // until real samples take over.
    constexpr std::uint64_t kUnsampledServiceGuessNs = 1'000'000;
    return depth < 2 ? depth + 1 : (depth + 1) * kUnsampledServiceGuessNs;
  }
  return (depth + 1) * ewma;
}

std::vector<Gateway::Slot*> Gateway::placement_candidates(
    std::uint64_t affinity_hint) {
  std::vector<Slot*> order;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    order = slot_order_;
  }
  const std::size_t n = order.size();
  // The session's warm slot leads the candidate list ONLY when idle:
  // following the hint into a queue would convoy every repeat invoke of a
  // hot session onto one slot and forfeit the pool.
  Slot* warm = nullptr;
  if (affinity_hint != 0 && affinity_hint <= n) {
    Slot* hinted = order[affinity_hint - 1];
    if (hinted->inflight.load(std::memory_order_relaxed) == 0) warm = hinted;
  }
  if (n < 2) {
    if (warm && !order.empty() && order.front() != warm)
      std::swap(order.front(), *std::find(order.begin(), order.end(), warm));
    return order;
  }

  // Sampled two-choice: probe two distinct slots round-robin and take
  // the cheaper by placement_cost (queue depth x EWMA slot latency,
  // then accumulated busy time, then global slot order) — O(1) instead
  // of a per-request sort, and provably near-optimal balance under load.
  const std::uint64_t tick = placement_tick_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t i = static_cast<std::size_t>(tick % n);
  const std::size_t j = (i + 1 + static_cast<std::size_t>((tick / n) % (n - 1))) % n;
  Slot* a = order[i];
  Slot* b = order[j];
  if (score_slot(*b) < score_slot(*a)) std::swap(a, b);

  // Spill-over tail in global slot order, so appraisal failures and full
  // queues walk the whole fleet rather than wedging the request.
  std::vector<Slot*> candidates;
  candidates.reserve(n);
  if (warm) candidates.push_back(warm);
  if (a != warm) candidates.push_back(a);
  if (b != warm) candidates.push_back(b);
  for (Slot* rest : order)
    if (rest != a && rest != b && rest != warm) candidates.push_back(rest);
  return candidates;
}

Gateway::ScoredSlot Gateway::score_slot(Slot& slot) {
  return ScoredSlot{placement_cost(slot),
                    slot.busy_ns.load(std::memory_order_relaxed),
                    slot.global_id, &slot};
}

// -- request handling --------------------------------------------------------

Result<Bytes> Gateway::handle_request(std::uint64_t conn, ByteView request) {
  auto op = peek_op(request);
  if (!op.ok()) return Result<Bytes>::err(op.error());
  switch (*op) {
    case Op::Attach: return handle_attach(conn, request);
    case Op::AttachBatch: return handle_attach_batch(conn, request);
    case Op::LoadModule: return handle_load_module(request);
    case Op::Invoke: return handle_invoke(request);
    case Op::InvokeBatch: return handle_invoke_batch(request);
    case Op::Stats: return handle_stats(request);
    case Op::Detach: return handle_detach(request);
    case Op::Submit: return handle_submit(request);
    case Op::Poll: return handle_poll(request);
  }
  return Result<Bytes>::err("gateway: unknown opcode");
}

Result<Bytes> Gateway::handle_attach(std::uint64_t conn, ByteView request) {
  auto req = AttachRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  // A plain attach is a batch of one: same fan-out, same merge, same
  // teardown semantics — only the response framing differs.
  auto batch = attach_sessions(conn, {req->client});
  if (!batch.ok()) return Result<Bytes>::err(batch.error());
  const AttachBatchResult& result = batch->results.front();
  if (!result.ok()) return Result<Bytes>::err(result.error);
  AttachResponse resp;
  resp.session_id = result.session_id;
  resp.devices_attested = result.devices_attested;
  resp.ra_exchanges = result.ra_exchanges;
  return ok_envelope(resp.encode());
}

Result<Bytes> Gateway::handle_attach_batch(std::uint64_t conn, ByteView request) {
  auto req = AttachBatchRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  auto resp = attach_sessions(conn, req->clients);
  if (!resp.ok()) return Result<Bytes>::err(resp.error());
  return ok_envelope(resp->encode());
}

Result<AttachBatchResponse> Gateway::attach_sessions(
    std::uint64_t conn, const std::vector<std::string>& clients) {
  using R = Result<AttachBatchResponse>;
  std::vector<Backend*> fleet;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    fleet = backend_order_;
  }
  if (fleet.empty()) return R::err("gateway: no devices enrolled");

  const std::uint64_t now = hw::monotonic_ns();
  std::vector<SessionPtr> sessions;
  sessions.reserve(clients.size());
  for (const std::string& client : clients)
    sessions.push_back(sessions_.attach(client, now));

  // One forced work item per backend, on its control lane (slot 0): the
  // item runs a single batched protocol exchange covering EVERY session —
  // lane i is session i — so each device pays two RA round-trips for the
  // whole batch instead of two per session, and the fleet's batches run in
  // parallel across the backends' control lanes.
  struct DeviceLanes {
    std::uint32_t fabric_exchanges = 0;
    std::vector<Result<std::uint32_t>> lanes;  // RA exchanges per session
  };
  struct Fanned {
    Backend* backend = nullptr;
    std::shared_ptr<std::promise<DeviceLanes>> promise;
    std::future<DeviceLanes> future;
  };
  std::vector<Fanned> pending;
  for (Backend* backend : fleet) {
    auto promise = std::make_shared<std::promise<DeviceLanes>>();
    auto future = promise->get_future();
    Slot* control_lane = backend->slots.front().get();
    Status admitted = post(
        *control_lane,
        [this, backend, control_lane, sessions, promise](std::uint64_t) {
          DeviceLanes out;
          out.lanes.assign(sessions.size(),
                           Result<std::uint32_t>::err("gateway: shutting down"));
          if (!stopping_.load(std::memory_order_acquire)) {
            std::uint64_t boot_count = 0;
            {
              std::lock_guard<std::mutex> lock(backend->state_mu);
              boot_count = backend->boot_count;
            }
            auto batch = run_handshake_batch(*backend, sessions.size());
            if (!batch.ok()) {
              for (auto& lane : out.lanes)
                lane = Result<std::uint32_t>::err("gateway: " + backend->hostname +
                                                  " failed appraisal: " + batch.error());
            } else {
              out.fabric_exchanges = batch->fabric_exchanges;
              const std::uint64_t attested_at = hw::monotonic_ns();
              for (std::size_t i = 0; i < sessions.size(); ++i) {
                Result<attestation::Evidence>& lane = batch->lanes[i];
                if (!lane.ok()) {
                  out.lanes[i] = Result<std::uint32_t>::err(
                      "gateway: " + backend->hostname + " failed appraisal: " +
                      lane.error());
                  continue;
                }
                Status recorded = sessions_.record_attestation(
                    *sessions[i], backend->hostname, boot_count, attested_at,
                    std::move(*lane));
                out.lanes[i] = recorded.ok()
                                   ? Result<std::uint32_t>(kRaExchangesPerHandshake)
                                   : Result<std::uint32_t>::err(recorded.error());
              }
            }
          }
          control_lane->inflight.fetch_sub(1, std::memory_order_release);
          promise->set_value(std::move(out));
        },
        /*force=*/true);
    if (!admitted.ok()) {
      DeviceLanes failed;
      failed.lanes.assign(sessions.size(),
                          Result<std::uint32_t>::err(admitted.error()));
      promise->set_value(std::move(failed));
    }
    pending.push_back(Fanned{backend, std::move(promise), std::move(future)});
  }

  AttachBatchResponse resp;
  resp.results.resize(sessions.size());
  std::vector<std::string> last_error(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i)
    resp.results[i].session_id = sessions[i]->id;
  for (Fanned& fanned : pending) {
    DeviceLanes outcome = fanned.future.get();
    resp.ra_fabric_exchanges += outcome.fabric_exchanges;
    for (std::size_t i = 0; i < outcome.lanes.size(); ++i) {
      if (outcome.lanes[i].ok()) {
        ++resp.results[i].devices_attested;
        resp.results[i].ra_exchanges += *outcome.lanes[i];
      } else {
        last_error[i] = outcome.lanes[i].error();
      }
    }
  }

  // Partial success by design: a session no device would attest detaches
  // and reports its error at its index; its siblings attach normally.
  std::vector<std::uint64_t> attached;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (resp.results[i].devices_attested == 0) {
      sessions_.detach(sessions[i]->id);
      resp.results[i].session_id = 0;
      resp.results[i].error =
          "gateway: no device passed appraisal: " + last_error[i];
      continue;
    }
    attached.push_back(sessions[i]->id);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    std::vector<std::uint64_t>& linked = conn_sessions_[conn];
    linked.insert(linked.end(), attached.begin(), attached.end());
  }
  return resp;
}

Result<Bytes> Gateway::handle_load_module(ByteView request) {
  auto req = LoadModuleRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!sessions_.find(req->session_id))
    return Result<Bytes>::err("gateway: unknown session");

  LoadModuleResponse resp;
  resp.measurement = crypto::sha256(req->binary);
  std::lock_guard<std::mutex> lock(binaries_mu_);
  resp.already_registered = binaries_.contains(resp.measurement);
  if (!resp.already_registered)
    register_binary(resp.measurement, std::move(req->binary));
  return ok_envelope(resp.encode());
}

Result<std::future<Result<InvokeResponse>>> Gateway::post_invoke(
    Slot& slot, const SessionPtr& session, const InvokeRequest& request,
    obs::TraceContext trace) {
  const std::uint64_t admit_start = trace.active() ? hw::monotonic_ns() : 0;
  auto promise = std::make_shared<std::promise<Result<InvokeResponse>>>();
  auto future = promise->get_future();
  Status admitted = post(
      slot, [this, slot = &slot, session, request, trace,
             promise](std::uint64_t queue_delay_ns) {
        // Install the lane's trace for everything below this frame: the
        // cache, the monitors, the wasm executor and (via the fabric's
        // same-thread callback) the verifier shards all emit against it.
        obs::ScopedTrace scope(trace.active() ? &span_sink_ : nullptr,
                               trace.trace_id, trace.span_id);
        auto outcome = execute_invoke(*slot, session, request, queue_delay_ns);
        slot->inflight.fetch_sub(1, std::memory_order_release);
        promise->set_value(std::move(outcome));
      });
  if (!admitted.ok())
    return Result<std::future<Result<InvokeResponse>>>::err(admitted.error());
  if (trace.active()) {
    // Admission span, recorded by the dispatcher thread (the worker-side
    // thread trace is not installed here): placement + enqueue, ending at
    // the hand-off the Queue span picks up from.
    obs::SpanRecord span;
    span.trace_id = trace.trace_id;
    span.span_id = obs::next_span_id();
    span.parent_id = trace.span_id;
    span.start_ns = admit_start;
    span.dur_ns = hw::monotonic_ns() - admit_start;
    span.stage = obs::Stage::Admit;
    span.detail = static_cast<std::uint32_t>(slot.index);
    span_sink_.record(span);
  }
  return future;
}

Result<InvokeResponse> Gateway::dispatch_invoke_sync(const SessionPtr& session,
                                                     const InvokeRequest& request,
                                                     obs::TraceContext trace) {
  std::string last_error = "gateway: no devices enrolled";
  // Migration detection: remember the first device that failed appraisal;
  // a later success on a DIFFERENT device means this session was
  // transparently re-placed onto a live board (its evidence for the new
  // device is established by ensure_attested inside the work item).
  std::string failed_device;
  const std::uint64_t migrate_start = hw::monotonic_ns();
  for (Slot* slot : placement_candidates(
           session->affinity_slot.load(std::memory_order_relaxed))) {
    auto future = post_invoke(*slot, session, request, trace);
    if (!future.ok()) {
      last_error = future.error();
      continue;  // spill to the next candidate
    }
    auto result = future->get();
    if (result.ok()) {
      if (!failed_device.empty() && slot->backend->hostname != failed_device) {
        migrations_.add();
        if (trace.active()) {
          obs::SpanRecord span;
          span.trace_id = trace.trace_id;
          span.span_id = obs::next_span_id();
          span.parent_id = trace.span_id;
          span.start_ns = migrate_start;
          span.dur_ns = hw::monotonic_ns() - migrate_start;
          span.stage = obs::Stage::Migrate;
          span_sink_.record(span);
        }
      }
      return result;
    }
    last_error = result.error();
    // Trust decides placement: a device failing appraisal is skipped in
    // favour of the next candidate rather than wedging the session.
    if (!is_appraisal_failure(last_error))
      return Result<InvokeResponse>::err(last_error);
    if (failed_device.empty()) failed_device = slot->backend->hostname;
  }
  // Whatever the spill path visited, a QUEUE_FULL terminal answer means
  // the client was bounced with backpressure: count it.
  if (is_queue_full(last_error)) queue_full_rejections_.add();
  return Result<InvokeResponse>::err(last_error);
}

Result<Bytes> Gateway::handle_invoke(ByteView request) {
  auto req = InvokeRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  SessionPtr session = sessions_.find(req->session_id);
  if (!session) return Result<Bytes>::err("gateway: unknown session");

  // Memo fast path: an identical invoke executed within the TTL and the
  // trust gate passes (fresh evidence for the executing device, or this
  // session produced the result itself) — answer without entering a
  // sandbox. This is what makes a transport-level retry after a dropped
  // or stalled response idempotent: the replayed request redeems the
  // memoised result instead of executing a second time.
  if (config_.invoke_memo_ttl_ns != 0) {
    if (auto hit = memo_lookup(*session, *req)) {
      session->invocations.fetch_add(1, std::memory_order_relaxed);
      return ok_envelope(hit->encode());
    }
  }

  obs::TraceContext trace;
  trace.trace_id = maybe_trace(req->trace_id);
  if (trace.active()) trace.span_id = obs::next_span_id();

  auto result = dispatch_invoke_sync(session, *req, trace);
  if (!result.ok()) {
    if (is_queue_full(result.error())) return busy_envelope(result.error());
    return Result<Bytes>::err(result.error());
  }
  if (!trace.active()) return ok_envelope(result->encode());
  const std::uint64_t respond_start = hw::monotonic_ns();
  auto payload = ok_envelope(result->encode());
  obs::SpanRecord span;
  span.trace_id = trace.trace_id;
  span.span_id = obs::next_span_id();
  span.parent_id = trace.span_id;
  span.start_ns = respond_start;
  span.dur_ns = hw::monotonic_ns() - respond_start;
  span.stage = obs::Stage::Respond;
  span_sink_.record(span);
  return payload;
}

Result<Bytes> Gateway::handle_invoke_batch(ByteView request) {
  auto req = InvokeBatchRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());

  InvokeBatchResponse resp;
  resp.results.resize(req->lanes.size());

  // One trace decision covers the whole batch — every traced lane shares
  // the trace_id (its own root span), so the fan renders as ONE flame
  // graph. A client-supplied lane id adopts the batch into that trace.
  std::uint64_t wire_trace = 0;
  for (const InvokeBatchRequest::Lane& lane : req->lanes)
    if (lane.invoke.trace_id != 0) {
      wire_trace = lane.invoke.trace_id;
      break;
    }
  const std::uint64_t batch_trace = maybe_trace(wire_trace);

  // One admission pass over one fleet snapshot: every lane is bound to
  // the cheapest SLOT by placement_cost. Because post() bumps inflight
  // at admission, lane k's pick already accounts for lanes 0..k-1 — the
  // fan spreads by predicted completion time, not by hash. The common
  // case is one O(slots) min-element per lane; only a full queue pays a
  // sort to spill down the cost order. Futures are collected first and
  // awaited after the whole pass, so the lanes execute concurrently
  // across the slot workers.
  //
  // Cross-lane dedup: lanes sharing (measurement, entry, args, heap)
  // execute once per batch — the first admitted lane is the LEADER, and a
  // later twin whose session already holds fresh evidence for the
  // leader's device becomes a RIDER: it is never admitted, it just fans
  // the leader's result (the freshness gate keeps the trust decision per
  // session — a rider with stale evidence executes normally and pays its
  // own handshake).
  std::vector<Slot*> fleet;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    fleet = slot_order_;
  }
  struct PendingLane {
    std::size_t index = 0;
    SessionPtr session;
    std::future<Result<InvokeResponse>> future;
    std::string device;            ///< hostname the leader was admitted to
    std::uint64_t boot_count = 0;  ///< at admission (freshness gate)
    std::vector<std::size_t> riders;  ///< lane indexes riding this result
    obs::TraceContext trace;          ///< batch trace_id + this lane's root
  };
  std::vector<PendingLane> pending;
  pending.reserve(req->lanes.size());
  std::map<std::string, std::size_t> leaders;  // dedup key -> pending index
  for (std::size_t i = 0; i < req->lanes.size(); ++i) {
    const InvokeBatchRequest::Lane& lane = req->lanes[i];
    resp.results[i].lane = lane.lane;
    SessionPtr session = sessions_.find(lane.invoke.session_id);
    if (!session) {
      resp.results[i].error = "gateway: unknown session";
      continue;
    }
    // Memo fast path, per lane: a lane whose invoke executed within the
    // TTL (and whose session passes the trust gate) is answered at
    // admission — it never becomes a leader or a rider. This is what
    // makes client-side retry of REPORTED-FAILED lanes idempotent: a lane
    // whose first delivery executed but whose response was lost re-enters
    // here and redeems the memo instead of executing again.
    if (config_.invoke_memo_ttl_ns != 0) {
      if (auto hit = memo_lookup(*session, lane.invoke)) {
        session->invocations.fetch_add(1, std::memory_order_relaxed);
        resp.results[i].result = std::move(*hit);
        continue;
      }
    }
    const std::string key = invoke_dedup_key(lane.invoke);
    const auto leader = leaders.find(key);
    if (leader != leaders.end()) {
      PendingLane& lead = pending[leader->second];
      if (sessions_.has_fresh(*session, lead.device, lead.boot_count,
                              hw::monotonic_ns())) {
        lead.riders.push_back(i);
        continue;
      }
    }
    obs::TraceContext lane_trace;
    if (batch_trace != 0) {
      lane_trace.trace_id = batch_trace;
      lane_trace.span_id = obs::next_span_id();
    }
    std::string last_error = "gateway: no devices enrolled";
    bool admitted = false;
    if (!fleet.empty()) {
      std::vector<ScoredSlot> scored;
      scored.reserve(fleet.size());
      for (Slot* slot : fleet) scored.push_back(score_slot(*slot));
      // Common case: the cheapest slot admits (one O(slots) scan).
      // Only a full queue pays the sort to spill down the cost order.
      auto best = std::min_element(scored.begin(), scored.end());
      std::iter_swap(scored.begin(), best);
      std::size_t chosen = 0;
      auto future =
          post_invoke(*scored.front().slot, session, lane.invoke, lane_trace);
      if (!future.ok()) {
        last_error = future.error();
        std::sort(scored.begin() + 1, scored.end());
        for (std::size_t s = 1; s < scored.size(); ++s) {
          auto retry =
              post_invoke(*scored[s].slot, session, lane.invoke, lane_trace);
          if (!retry.ok()) {
            last_error = retry.error();
            continue;
          }
          future = std::move(retry);
          chosen = s;
          break;
        }
      }
      if (future.ok()) {
        PendingLane entry;
        entry.index = i;
        entry.session = session;
        entry.future = std::move(*future);
        entry.trace = lane_trace;
        Backend* backend = scored[chosen].slot->backend;
        entry.device = backend->hostname;
        {
          std::lock_guard<std::mutex> lock(backend->state_mu);
          entry.boot_count = backend->boot_count;
        }
        leaders.try_emplace(key, pending.size());
        pending.push_back(std::move(entry));
        admitted = true;
      }
    }
    if (!admitted) {
      // Total backpressure (or an empty fleet) fails THIS lane only; its
      // siblings were already admitted and proceed. The client sees the
      // failed index and owns the retry.
      if (is_queue_full(last_error)) queue_full_rejections_.add();
      resp.results[i].error = last_error;
    }
  }

  for (PendingLane& lane : pending) {
    auto outcome = lane.future.get();
    bool rerouted = false;
    if (!outcome.ok() && is_appraisal_failure(outcome.error())) {
      // Trust decides placement, on the batch path too: a lane that
      // landed on a device failing appraisal is re-dispatched through the
      // sync path, which skips appraisal failures candidate by candidate
      // (same invariant as dispatch_invoke_sync for plain INVOKE). Rare —
      // paid only by the affected lanes, after the healthy fan completed.
      outcome = dispatch_invoke_sync(lane.session, req->lanes[lane.index].invoke,
                                     lane.trace);
      rerouted = true;
    }
    const std::uint64_t respond_start =
        lane.trace.active() ? hw::monotonic_ns() : 0;
    if (outcome.ok() && !rerouted) {
      // Riders fan the leader's execution: same results, zero RA traffic
      // of their own (the freshness gate at admission guaranteed their
      // evidence).
      for (const std::size_t rider : lane.riders) {
        InvokeResponse copy = *outcome;
        copy.ra_exchanges = 0;
        resp.results[rider].result = std::move(copy);
      }
      if (!lane.riders.empty()) deduped_lanes_.add(lane.riders.size());
    } else {
      // A failed OR re-routed leader never speaks for its riders: the
      // re-dispatch may have executed on a different device than the one
      // the riders were freshness-gated against, so each rider re-enters
      // the normal dispatch path alone — where ensure_attested makes its
      // own per-session trust decision. Rare — the price of a trap or an
      // appraisal failure, not of the happy path.
      for (const std::size_t rider : lane.riders) {
        SessionPtr rider_session =
            sessions_.find(req->lanes[rider].invoke.session_id);
        auto redo = rider_session
                        ? dispatch_invoke_sync(rider_session,
                                               req->lanes[rider].invoke)
                        : Result<InvokeResponse>::err("gateway: unknown session");
        if (redo.ok())
          resp.results[rider].result = std::move(*redo);
        else
          resp.results[rider].error = redo.error();
      }
    }
    if (outcome.ok())
      resp.results[lane.index].result = std::move(*outcome);
    else
      resp.results[lane.index].error = outcome.error();
    if (lane.trace.active()) {
      // Per-lane Respond span: rider fan + result fold back into the
      // batch response (the whole-batch encode is not attributable to one
      // lane, so it stays outside the trace).
      obs::SpanRecord span;
      span.trace_id = lane.trace.trace_id;
      span.span_id = obs::next_span_id();
      span.parent_id = lane.trace.span_id;
      span.start_ns = respond_start;
      span.dur_ns = hw::monotonic_ns() - respond_start;
      span.stage = obs::Stage::Respond;
      span_sink_.record(span);
    }
  }
  return ok_envelope(resp.encode());
}

Result<Bytes> Gateway::handle_submit(ByteView request) {
  auto req = SubmitRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  SessionPtr session = sessions_.find(req->invoke.session_id);
  if (!session) return Result<Bytes>::err("gateway: unknown session");

  // Memo fast path: an identical invoke executed within the TTL and this
  // session trusts the device that ran it — hand out a pre-satisfied
  // ticket, no admission, no sandbox. POLL redeems it like any other.
  if (config_.invoke_memo_ttl_ns != 0) {
    if (auto hit = memo_lookup(*session, req->invoke)) {
      std::promise<Result<InvokeResponse>> ready;
      ready.set_value(std::move(*hit));
      const std::uint64_t ticket =
          next_ticket_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        pending_[ticket] = PendingInvoke{session->id, ready.get_future()};
      }
      session->invocations.fetch_add(1, std::memory_order_relaxed);
      SubmitResponse resp;
      resp.ticket = ticket;
      return ok_envelope(resp.encode());
    }
  }

  obs::TraceContext trace;
  trace.trace_id = maybe_trace(req->invoke.trace_id);
  if (trace.active()) trace.span_id = obs::next_span_id();

  std::string last_error = "gateway: no devices enrolled";
  for (Slot* slot : placement_candidates(
           session->affinity_slot.load(std::memory_order_relaxed))) {
    auto future = post_invoke(*slot, session, req->invoke, trace);
    if (!future.ok()) {
      last_error = future.error();
      continue;  // spill past full queues
    }
    const std::uint64_t ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_[ticket] = PendingInvoke{session->id, std::move(*future)};
    }
    SubmitResponse resp;
    resp.ticket = ticket;
    return ok_envelope(resp.encode());
  }
  if (is_queue_full(last_error)) {
    queue_full_rejections_.add();
    return busy_envelope(last_error);
  }
  return Result<Bytes>::err(last_error);
}

Result<Bytes> Gateway::handle_poll(ByteView request) {
  auto req = PollRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());

  PollResponse resp;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    const auto it = pending_.find(req->ticket);
    if (it == pending_.end())
      return Result<Bytes>::err("gateway: unknown ticket");
    if (it->second.session_id != req->session_id)
      return Result<Bytes>::err("gateway: ticket belongs to another session");
    if (it->second.result.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      return ok_envelope(resp.encode());  // ready == false: poll again
    auto result = it->second.result.get();
    pending_.erase(it);
    resp.ready = true;
    if (result.ok())
      resp.result = std::move(*result);
    else
      resp.error = result.error();
  }
  return ok_envelope(resp.encode());
}

// Runs on the slot's worker thread. The guest executes on the SLOT's
// monitor (data plane, concurrent across the pool); only a lazy handshake
// detours through the device's primary monitor, serialised inside
// run_handshake on the DeviceControl TEE mutex. Lock discipline
// (DESIGN.md §2): session.mu and cache.mu are leaves; neither is held
// across the guest invoke below.
Result<InvokeResponse> Gateway::execute_invoke(Slot& slot,
                                               const SessionPtr& session,
                                               const InvokeRequest& request,
                                               std::uint64_t queue_delay_ns) {
  using R = Result<InvokeResponse>;
  Backend& backend = *slot.backend;
  if (stopping_.load(std::memory_order_acquire)) return R::err("gateway: shutting down");
  if (session->closed.load(std::memory_order_acquire))
    return R::err("gateway: session detached");

  const bool traced = obs::tracing_active();
  const bool slow_log = config_.slow_invoke_threshold_ns != 0;
  const std::uint64_t pickup_ns =
      (traced || slow_log) ? hw::monotonic_ns() : 0;
  if (traced)
    // The Queue span is reconstructed from the admission stamp the work
    // item carried: it ended at pickup and lasted the measured delay.
    obs::emit_span(obs::Stage::Queue,
                   pickup_ns - std::min(queue_delay_ns, pickup_ns), pickup_ns,
                   static_cast<std::uint32_t>(slot.index));

  std::shared_ptr<ModuleCache> cache;
  std::shared_ptr<core::DeviceControl> control;
  std::uint64_t boot_count = 0;
  {
    std::lock_guard<std::mutex> lock(backend.state_mu);
    cache = backend.cache;
    control = backend.control;
    boot_count = backend.boot_count;
  }
  const std::string& hostname = backend.hostname;

  // Trust first: the session must hold fresh evidence for this device
  // (free when cached; a TTL/boot-count miss re-runs the handshake).
  const std::uint64_t ra_start = hw::monotonic_ns();
  auto exchanges = sessions_.ensure_attested(
      *session, hostname, boot_count, ra_start,
      [&] { return run_handshake(backend); });
  if (!exchanges.ok()) return R::err(exchanges.error());
  std::uint64_t ra_ns = 0;
  if (*exchanges > 0) {
    // Only a lazy handshake on the critical path counts as RA latency; a
    // fresh-evidence hit is the amortisation working as intended.
    ra_ns = hw::monotonic_ns() - ra_start;
    stage_ra_hist_.record(ra_ns);
    if (traced) obs::emit_span(obs::Stage::Ra, ra_start, ra_start + ra_ns);
  }

  // The registry is only consulted on a cold cache miss, and the binary is
  // copied out so the worker never holds a view into a registry another
  // client may be evicting.
  Bytes binary;
  if (!cache->contains(request.measurement)) binary = copy_binary(request.measurement);

  core::AppConfig app_config;
  app_config.heap_bytes = request.heap_bytes
                              ? static_cast<std::size_t>(request.heap_bytes)
                              : config_.default_heap_bytes;
  // The lease is bound to THIS slot's monitor: pool hits only ever reuse
  // an instance this slot parked, so no sandbox is driven by two threads.
  tz::SecureMonitor& slot_monitor = control->slot(slot.index).monitor();
  const std::uint64_t enters_before = slot_monitor.enter_count();
  const std::uint64_t leaves_before = slot_monitor.leave_count();
  const std::uint64_t acquire_start = hw::monotonic_ns();
  auto lease = cache->acquire(request.measurement, binary, app_config,
                              &slot_monitor);
  if (!lease.ok()) return R::err(lease.error());
  const std::uint64_t acquire_end = hw::monotonic_ns();
  if (traced)
    // A pool hit is a Checkout (nothing launched); anything that paid
    // instantiation — cold or module-cached — renders as Prepare.
    obs::emit_span(lease->pool_hit ? obs::Stage::Checkout : obs::Stage::Prepare,
                   acquire_start, acquire_end);

  const std::uint64_t t0 = hw::monotonic_ns();
  auto result = lease->app->invoke(request.entry, request.args);
  const std::uint64_t invoke_ns = hw::monotonic_ns() - t0;
  stage_exec_hist_.record(invoke_ns);
  if (traced) obs::emit_span(obs::Stage::Exec, t0, t0 + invoke_ns);

  const std::uint64_t service_ns = lease->launch_ns + invoke_ns;
  slot.busy_ns.fetch_add(service_ns, std::memory_order_relaxed);
  // EWMA (alpha = 1/8) of the slot's per-invoke service time, feeding
  // placement_cost. Plain load/store: only this slot's worker thread
  // ever writes it (atomic only for the cross-thread placement reads).
  const std::uint64_t prev_ewma =
      slot.ewma_invoke_ns.load(std::memory_order_relaxed);
  slot.ewma_invoke_ns.store(
      prev_ewma ? prev_ewma - prev_ewma / 8 + service_ns / 8 : service_ns,
      std::memory_order_relaxed);
  slot.invocations.fetch_add(1, std::memory_order_relaxed);
  invocations_.add();
  session->invocations.fetch_add(1, std::memory_order_relaxed);
  // Soft affinity: the next invoke of this session prefers this slot while
  // it sits idle — its warm pool now holds the instance released below.
  session->affinity_slot.store(slot.global_id + 1, std::memory_order_relaxed);

  if (slow_log) {
    const std::uint64_t end_ns = hw::monotonic_ns();
    const std::uint64_t total_ns = queue_delay_ns + (end_ns - pickup_ns);
    if (total_ns >= config_.slow_invoke_threshold_ns) {
      // World-switch time is reconstructed from the slot monitor's
      // transition counters (written only by this thread) times the
      // configured charges — the modeled truth, free of clock jitter.
      // A disabled latency model charges nothing, so reports nothing.
      const hw::LatencyConfig& charge = slot_monitor.latency().config();
      SlowInvoke slow;
      slow.trace_id = obs::thread_trace().trace_id;
      slow.total_ns = total_ns;
      slow.queue_ns = queue_delay_ns;
      slow.prepare_ns = acquire_end - acquire_start;
      if (charge.enabled)
        slow.tee_ns =
            (slot_monitor.enter_count() - enters_before) * charge.smc_enter_ns +
            (slot_monitor.leave_count() - leaves_before) * charge.smc_leave_ns;
      slow.exec_ns = invoke_ns;
      slow.ra_ns = ra_ns;
      slow.device = hostname;
      slow.entry = request.entry;
      record_slow_invoke(std::move(slow));
    }
  }

  if (!result.ok()) return R::err("gateway: " + result.error());
  // Only clean exits go back to the warm pool; trapped instances are torn
  // down with their sandbox state (the lease forfeits its live pin).
  cache->release(std::move(lease->app));

  InvokeResponse resp;
  resp.results = std::move(*result);
  resp.device = hostname;
  resp.module_cache_hit = lease->module_cache_hit;
  resp.pool_hit = lease->pool_hit;
  resp.launch_ns = lease->launch_ns;
  resp.invoke_ns = invoke_ns;
  resp.ra_exchanges = *exchanges;
  resp.queue_delay_ns = queue_delay_ns;
  resp.trace_id = obs::thread_trace().trace_id;
  // Feed the result memo: a twin submitted within the TTL by any session
  // trusting this device rides this execution instead of its own — and a
  // chaos-replayed delivery of THIS request redeems it instead of
  // executing again.
  if (config_.invoke_memo_ttl_ns != 0)
    memo_store(request, resp, hostname, boot_count, session->id);
  return resp;
}

std::optional<InvokeResponse> Gateway::memo_lookup(Session& session,
                                                   const InvokeRequest& request) {
  const std::uint64_t now = hw::monotonic_ns();
  const std::string key = invoke_dedup_key(request);
  auto hit = memo_.lookup(key, now, config_.invoke_memo_ttl_ns);
  if (!hit) return std::nullopt;
  InvokeMemo::Entry entry = std::move(*hit);
  // Trust gate, decided OUTSIDE the memo lock (has_fresh takes the
  // session lock; the memo's mutex stays a leaf):
  //   * the producer redeeming its OWN result needs no freshness check —
  //     the result was produced under evidence fresh at execution time,
  //     and the TTL bounds the redemption window. This is the replay
  //     absorber: after a dropped/stalled response (or even a device
  //     reboot that bumped the boot count), the producer's retry is
  //     answered from the memo instead of executing a second time;
  //   * any OTHER session must hold fresh evidence for the device (at the
  //     boot count) that produced the result — the same per-session trust
  //     gate as an INVOKE_BATCH rider.
  const bool producer = entry.producer_session == session.id;
  if (!producer &&
      !sessions_.has_fresh(session, entry.device, entry.boot_count, now))
    return std::nullopt;
  memo_.note_hit(key, now);
  invoke_memo_hits_.add();
  entry.response.ra_exchanges = 0;
  entry.response.queue_delay_ns = 0;
  entry.response.trace_id = 0;
  return std::move(entry.response);
}

void Gateway::memo_store(const InvokeRequest& request,
                         const InvokeResponse& response,
                         const std::string& device, std::uint64_t boot_count,
                         std::uint64_t producer_session) {
  InvokeMemo::Entry entry;
  entry.response = response;
  entry.device = device;
  entry.boot_count = boot_count;
  entry.producer_session = producer_session;
  memo_.store(invoke_dedup_key(request), std::move(entry), hw::monotonic_ns());
}

Result<attestation::Evidence> Gateway::run_handshake(Backend& backend) {
  using Ev = Result<attestation::Evidence>;
  const std::string& hostname = backend.hostname;
  core::Device* device_snapshot = nullptr;
  std::shared_ptr<core::DeviceControl> control;
  std::shared_ptr<crypto::Fortuna> rng;
  crypto::Sha256Digest claim;
  {
    std::lock_guard<std::mutex> lock(backend.state_mu);
    device_snapshot = backend.device;
    control = backend.control;
    rng = backend.attester_rng;
    claim = backend.platform_claim;
  }
  core::Device& device = *device_snapshot;
  // The attester state machine runs inside the device's TEE on its PRIMARY
  // monitor (control plane): concurrent slot workers needing a handshake
  // serialise on the DeviceControl TEE mutex — guest invokes on the slot
  // monitors are untouched. The attester's socket calls are relayed by the
  // supplicant across the fabric to the gateway's RA endpoint (exactly the
  // SS V deployment, with the gateway as relying party).
  std::lock_guard<std::mutex> tee_lock(control->tee_mutex());
  return device.monitor().smc_call([&]() -> Ev {
    optee::Supplicant* supplicant = device.os().supplicant();
    if (!supplicant) return Ev::err("gateway: " + hostname + ": no supplicant");

    ra::AttesterSession attester(*rng, verifier_->identity_key());
    auto conn = supplicant->socket_connect(config_.hostname, config_.ra_port);
    if (!conn.ok()) return Ev::err(conn.error());
    struct CloseGuard {
      optee::Supplicant* s;
      std::uint32_t handle;
      ~CloseGuard() { s->socket_close(handle); }
    } guard{supplicant, *conn};

    auto msg1 = supplicant->socket_send_recv(*conn, attester.make_msg0());
    if (!msg1.ok()) return Ev::err(msg1.error());

    attestation::Evidence evidence;
    auto msg2 = attester.handle_msg1(
        *msg1, [&](const std::array<std::uint8_t, 32>& anchor) {
          evidence = device.attestation_service().issue_evidence(anchor, claim);
          return evidence;
        });
    if (!msg2.ok()) return Ev::err(msg2.error());

    auto msg3 = supplicant->socket_send_recv(*conn, *msg2);
    if (!msg3.ok()) return Ev::err(msg3.error());  // verifier rejected the device
    auto ticket = attester.handle_msg3(*msg3);
    if (!ticket.ok()) return Ev::err(ticket.error());
    return evidence;
  });
}

Result<Gateway::BatchHandshake> Gateway::run_handshake_batch(Backend& backend,
                                                             std::size_t lanes) {
  using R = Result<BatchHandshake>;
  const std::string& hostname = backend.hostname;
  core::Device* device_snapshot = nullptr;
  std::shared_ptr<core::DeviceControl> control;
  std::shared_ptr<crypto::Fortuna> rng;
  crypto::Sha256Digest claim;
  {
    std::lock_guard<std::mutex> lock(backend.state_mu);
    device_snapshot = backend.device;
    control = backend.control;
    rng = backend.attester_rng;
    claim = backend.platform_claim;
  }
  core::Device& device = *device_snapshot;
  // One TEE entry covers the whole batch: `lanes` attester state machines
  // advance in lockstep, and each protocol step crosses the fabric ONCE as
  // a batch frame (ra/messages.hpp) instead of once per session. Control
  // plane: the primary monitor, serialised on the DeviceControl TEE mutex
  // against lazy per-slot handshakes.
  std::lock_guard<std::mutex> tee_lock(control->tee_mutex());
  return device.monitor().smc_call([&]() -> R {
    optee::Supplicant* supplicant = device.os().supplicant();
    if (!supplicant) return R::err("gateway: " + hostname + ": no supplicant");

    BatchHandshake out;
    out.lanes.assign(lanes, Result<attestation::Evidence>::err(
                                "gateway: " + hostname + ": no verifier reply"));

    std::vector<ra::AttesterSession> attesters;
    attesters.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
      attesters.emplace_back(*rng, verifier_->identity_key());

    auto conn = supplicant->socket_connect(config_.hostname, config_.ra_port);
    if (!conn.ok()) return R::err(conn.error());
    struct CloseGuard {
      optee::Supplicant* s;
      std::uint32_t handle;
      ~CloseGuard() { s->socket_close(handle); }
    } guard{supplicant, *conn};

    // Round-trip 1: every lane's msg0 in one exchange, msg1s back.
    std::vector<ra::BatchItem> msg0s;
    msg0s.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
      msg0s.push_back(
          ra::BatchItem{static_cast<std::uint32_t>(i), attesters[i].make_msg0()});
    auto reply1 = supplicant->socket_send_recv(*conn, ra::encode_batch(msg0s));
    if (!reply1.ok()) return R::err(reply1.error());
    ++out.fabric_exchanges;
    auto msg1s = ra::decode_batch_reply(*reply1);
    if (!msg1s.ok()) return R::err(msg1s.error());

    // Evidence is issued per lane while consuming msg1 (the anchor binds it
    // to that lane's session); failed lanes drop out of round-trip 2.
    std::vector<attestation::Evidence> evidences(lanes);
    std::vector<bool> alive(lanes, false);
    std::vector<ra::BatchItem> msg2s;
    for (const ra::BatchReplyItem& item : *msg1s) {
      if (item.lane >= lanes) continue;  // not a lane we opened
      if (!item.ok) {
        out.lanes[item.lane] = Result<attestation::Evidence>::err(item.error);
        continue;
      }
      auto msg2 = attesters[item.lane].handle_msg1(
          item.payload, [&](const std::array<std::uint8_t, 32>& anchor) {
            evidences[item.lane] =
                device.attestation_service().issue_evidence(anchor, claim);
            return evidences[item.lane];
          });
      if (!msg2.ok()) {
        out.lanes[item.lane] = Result<attestation::Evidence>::err(msg2.error());
        continue;
      }
      msg2s.push_back(ra::BatchItem{item.lane, std::move(*msg2)});
      alive[item.lane] = true;
    }
    if (msg2s.empty()) return out;  // every lane failed before appraisal

    // Round-trip 2: surviving msg2s; per-lane msg3 or appraisal rejection.
    auto reply2 = supplicant->socket_send_recv(*conn, ra::encode_batch(msg2s));
    if (!reply2.ok()) return R::err(reply2.error());
    ++out.fabric_exchanges;
    auto msg3s = ra::decode_batch_reply(*reply2);
    if (!msg3s.ok()) return R::err(msg3s.error());
    for (const ra::BatchReplyItem& item : *msg3s) {
      if (item.lane >= lanes || !alive[item.lane]) continue;
      if (!item.ok) {
        out.lanes[item.lane] = Result<attestation::Evidence>::err(item.error);
        continue;
      }
      auto ticket = attesters[item.lane].handle_msg3(item.payload);
      if (!ticket.ok()) {
        out.lanes[item.lane] = Result<attestation::Evidence>::err(ticket.error());
        continue;
      }
      out.lanes[item.lane] = std::move(evidences[item.lane]);
    }
    return out;
  });
}

// -- evidence renewal --------------------------------------------------------

std::size_t Gateway::sweep_evidence_renewals() {
  const std::uint64_t ttl = config_.session_policy.evidence_ttl_ns;
  if (ttl == ~0ull) return 0;  // infinite TTL: nothing ever goes stale
  // Renew at ~80% of the TTL: early enough that the batch completes before
  // expiry, late enough not to double the handshake rate.
  const std::uint64_t threshold = ttl - ttl / 5;

  std::vector<Backend*> fleet;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    fleet = backend_order_;
  }
  // Fan first, collect second (the attach_sessions shape): one forced
  // control-lane item per device, reusing the batched handshake machinery
  // — all N sessions re-prove in 2 fabric round-trips per device, and the
  // DEVICES renew in parallel. Waiting inside the loop would serialise
  // the fleet and let late-ordered devices' evidence lapse before the
  // sweep reaches them.
  std::vector<std::future<std::size_t>> fanned;
  for (Backend* backend : fleet) {
    std::uint64_t boot_count = 0;
    {
      std::lock_guard<std::mutex> lock(backend->state_mu);
      boot_count = backend->boot_count;
    }
    auto due = sessions_.renewal_candidates(backend->hostname, boot_count,
                                            hw::monotonic_ns(), threshold);
    if (due.empty()) continue;

    auto promise = std::make_shared<std::promise<std::size_t>>();
    auto future = promise->get_future();
    Slot* control_lane = backend->slots.front().get();
    Status admitted = post(
        *control_lane,
        [this, backend, control_lane, due, promise](std::uint64_t) {
          std::size_t renewed = 0;
          if (!stopping_.load(std::memory_order_acquire)) {
            std::uint64_t boot = 0;
            {
              std::lock_guard<std::mutex> lock(backend->state_mu);
              boot = backend->boot_count;
            }
            auto batch = run_handshake_batch(*backend, due.size());
            if (batch.ok()) {
              const std::uint64_t attested_at = hw::monotonic_ns();
              for (std::size_t i = 0; i < due.size(); ++i) {
                if (!batch->lanes[i].ok()) continue;
                if (sessions_
                        .record_attestation(*due[i], backend->hostname, boot,
                                            attested_at,
                                            std::move(*batch->lanes[i]))
                        .ok())
                  ++renewed;
              }
            }
          }
          control_lane->inflight.fetch_sub(1, std::memory_order_release);
          promise->set_value(renewed);
        },
        /*force=*/true);
    if (admitted.ok()) fanned.push_back(std::move(future));
  }
  std::size_t renewed_total = 0;
  for (std::future<std::size_t>& future : fanned) renewed_total += future.get();
  if (renewed_total) evidence_renewals_.add(renewed_total);
  return renewed_total;
}

std::size_t Gateway::sweep_module_prewarms() {
  // Snapshot the registered binaries once (copies — a worker must never
  // hold a view into a registry another client may be evicting), then fan
  // one forced control-lane item per backend, each preparing whatever its
  // cache does not hold yet, and collect. The prepares run on the
  // backends' control lanes CONCURRENTLY across the fleet; within one
  // device they serialise behind that device's control-plane work, which
  // is exactly where a Loading-phase burn belongs (never on a data slot
  // mid-storm).
  std::vector<std::pair<crypto::Sha256Digest, Bytes>> binaries;
  {
    std::lock_guard<std::mutex> lock(binaries_mu_);
    binaries.reserve(binaries_.size());
    for (const auto& [measurement, registered] : binaries_)
      binaries.emplace_back(measurement, registered.bytes);
  }
  if (binaries.empty()) return 0;
  std::vector<Backend*> fleet;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    fleet = backend_order_;
  }
  const wasm::ExecMode mode = core::AppConfig{}.mode;
  std::vector<std::future<std::size_t>> fanned;
  for (Backend* backend : fleet) {
    auto promise = std::make_shared<std::promise<std::size_t>>();
    auto future = promise->get_future();
    Slot* control_lane = backend->slots.front().get();
    Status admitted = post(
        *control_lane,
        [this, backend, control_lane, binaries, mode, promise](std::uint64_t) {
          std::size_t prepared = 0;
          if (!stopping_.load(std::memory_order_acquire)) {
            std::shared_ptr<ModuleCache> cache;
            {
              std::lock_guard<std::mutex> lock(backend->state_mu);
              cache = backend->cache;
            }
            if (cache) {
              for (const auto& [measurement, binary] : binaries) {
                if (cache->contains(measurement)) continue;
                if (cache->prepare(measurement, binary, mode).ok()) ++prepared;
              }
            }
          }
          control_lane->inflight.fetch_sub(1, std::memory_order_release);
          promise->set_value(prepared);
        },
        /*force=*/true);
    if (admitted.ok()) fanned.push_back(std::move(future));
  }
  std::size_t prepared_total = 0;
  for (std::future<std::size_t>& future : fanned) prepared_total += future.get();
  if (prepared_total) prewarm_prepares_.add(prepared_total);
  return prepared_total;
}

std::size_t Gateway::sweep_tier_compiles() {
  // Codegen never enters a TEE and the per-cache sweep takes only leaf
  // locks, so the whole fleet compiles on THIS (control-plane) thread —
  // no slot queue is occupied and no guest invoke is delayed. The compile
  // metric flushes ride the TierSets' bound registry sinks.
  std::vector<Backend*> fleet;
  {
    std::lock_guard<std::mutex> lock(backends_mu_);
    fleet = backend_order_;
  }
  std::size_t compiled = 0;
  for (Backend* backend : fleet) {
    std::shared_ptr<ModuleCache> cache;
    {
      std::lock_guard<std::mutex> lock(backend->state_mu);
      cache = backend->cache;
    }
    if (cache) compiled += cache->sweep_tier_compiles();
  }
  return compiled;
}

void Gateway::renewal_loop() {
  const std::uint64_t ttl = config_.session_policy.evidence_ttl_ns;
  const bool renew_evidence = config_.evidence_renewal && ttl != ~0ull;
  const bool pump_tiering = config_.jit_tiering && wasm::jit::jit_available();
  std::uint64_t interval = config_.renewal_interval_ns;
  if (interval == 0)
    // Several sweeps per TTL; with no TTL to chase (tiering-only duty) a
    // fixed cadence keeps hot functions from waiting long for native code.
    interval = renew_evidence ? ttl / 5 : 10'000'000;
  if (interval < 100'000) interval = 100'000;  // floor: don't spin
  std::unique_lock<std::mutex> lock(renew_mu_);
  while (!renew_stop_) {
    renew_cv_.wait_for(lock, std::chrono::nanoseconds(interval),
                       [&] { return renew_stop_; });
    if (renew_stop_) return;
    lock.unlock();
    if (renew_evidence) sweep_evidence_renewals();
    if (pump_tiering) sweep_tier_compiles();
    if (config_.module_prewarm) sweep_module_prewarms();
    lock.lock();
  }
}

// -- binary registry ---------------------------------------------------------

Bytes Gateway::copy_binary(const crypto::Sha256Digest& measurement) {
  std::lock_guard<std::mutex> lock(binaries_mu_);
  const auto it = binaries_.find(measurement);
  if (it == binaries_.end()) return {};
  it->second.last_used = ++binaries_tick_;
  return it->second.bytes;
}

void Gateway::register_binary(const crypto::Sha256Digest& measurement, Bytes binary) {
  // The normal-world registry is budgeted like the secure-side caches:
  // least-recently-used binaries are dropped to make room (an evicted
  // binary simply has to be re-uploaded before its next cold miss).
  while (!binaries_.empty() &&
         binaries_bytes_ + binary.size() > config_.binary_registry_budget_bytes) {
    auto victim = binaries_.begin();
    for (auto it = binaries_.begin(); it != binaries_.end(); ++it)
      if (it->second.last_used < victim->second.last_used) victim = it;
    binaries_bytes_ -= victim->second.bytes.size();
    binaries_.erase(victim);
  }
  binaries_bytes_ += binary.size();
  binaries_.emplace(measurement,
                    RegisteredBinary{std::move(binary), ++binaries_tick_});
}

// -- session teardown --------------------------------------------------------

bool Gateway::detach_session(std::uint64_t session_id, bool drop_tickets) {
  // Order matters: mark the session closed FIRST so queued work items fail
  // fast instead of executing against a half-dropped session. Workers
  // fulfilling an erased ticket's promise are harmless — the promise's
  // shared state outlives the table entry.
  if (!sessions_.detach(session_id)) return false;
  if (drop_tickets) {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second.session_id == session_id)
        it = pending_.erase(it);
      else
        ++it;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [conn, ids] : conn_sessions_)
      std::erase(ids, session_id);
  }
  return true;
}

void Gateway::on_client_close(std::uint64_t conn) {
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    const auto it = conn_sessions_.find(conn);
    if (it == conn_sessions_.end()) return;
    ids = std::move(it->second);
    conn_sessions_.erase(it);
  }
  for (std::uint64_t id : ids) detach_session(id, /*drop_tickets=*/true);
}

Result<Bytes> Gateway::handle_stats(ByteView request) {
  auto req = StatsRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!sessions_.find(req->session_id))
    return Result<Bytes>::err("gateway: unknown session");
  return ok_envelope(stats(req->detail).encode());
}

Result<Bytes> Gateway::handle_detach(ByteView request) {
  auto req = DetachRequest::decode(request);
  if (!req.ok()) return Result<Bytes>::err(req.error());
  if (!detach_session(req->session_id, /*drop_tickets=*/false))
    return Result<Bytes>::err("gateway: unknown session");
  return ok_envelope({});
}

namespace {

/// Percentile summary of one registry histogram, as STATS serialises it.
StageStats stage_summary(const obs::Histogram& hist) {
  StageStats summary;
  summary.count = hist.count();
  summary.p50_ns = hist.percentile(0.50);
  summary.p90_ns = hist.percentile(0.90);
  summary.p99_ns = hist.percentile(0.99);
  return summary;
}

}  // namespace

GatewayStats Gateway::stats(bool detail) {
  GatewayStats stats;
  stats.sessions_active = sessions_.active();
  stats.sessions_total = sessions_.sessions_total();
  stats.handshakes_run = sessions_.handshakes_run();
  stats.handshakes_reused = sessions_.handshakes_reused();
  stats.invocations = invocations_.get();
  stats.queue_full_rejections = queue_full_rejections_.get();
  stats.deduped_lanes = deduped_lanes_.get();
  stats.evidence_renewals = evidence_renewals_.get();
  stats.tier_up_compiles = tier_up_compiles_.get();
  stats.native_entries = native_entries_.get();
  stats.jit_fallback_ops = jit_fallback_ops_.get();
  stats.jit_fallback_float = jit_fallback_float_.get();
  stats.jit_fallback_conv = jit_fallback_conv_.get();
  stats.jit_fallback_call = jit_fallback_call_.get();
  stats.jit_fallback_other = jit_fallback_other_.get();
  stats.invoke_memo_hits = invoke_memo_hits_.get();
  stats.migrations = migrations_.get();
  stats.prewarm_prepares = prewarm_prepares_.get();
  stats.queue_delay_p50_ns = queue_delay_hist_.percentile(0.50);
  stats.queue_delay_p90_ns = queue_delay_hist_.percentile(0.90);
  stats.queue_delay_p99_ns = queue_delay_hist_.percentile(0.99);
  stats.stage_queue = stage_summary(queue_delay_hist_);
  stats.stage_exec = stage_summary(stage_exec_hist_);
  stats.stage_tee_entry = stage_summary(stage_tee_entry_hist_);
  stats.stage_ra = stage_summary(stage_ra_hist_);
  if (detail) {
    // Compile-duration percentiles ride the detail flag like the
    // slow-invoke ring: bulk diagnostics, not steady-state polling fare.
    stats.stage_jit_compile = stage_summary(tier_compile_ns_hist_);
    std::lock_guard<std::mutex> lock(slow_mu_);
    stats.slow_invokes.assign(slow_invokes_.begin(), slow_invokes_.end());
  }
  for (const ra::VerifierShardStats& s : verifier_->stats()) {
    RaShardStats shard;
    shard.msg0s = s.msg0s;
    shard.handshakes = s.handshakes;
    shard.rejects = s.rejects;
    shard.key_rotations = s.key_rotations;
    stats.ra_shards.push_back(shard);
  }
  {
    std::lock_guard<std::mutex> lock(binaries_mu_);
    stats.modules_registered = binaries_.size();
  }
  std::lock_guard<std::mutex> lock(backends_mu_);
  for (auto& [name, backend] : backends_) {
    DeviceStats d;
    d.hostname = name;
    d.pool_slots = static_cast<std::uint32_t>(backend.slots.size());
    for (const auto& slot : backend.slots) {
      SlotStats s;
      s.inflight = slot->inflight.load(std::memory_order_relaxed);
      s.queue_depth_peak = slot->queue_depth_peak.load(std::memory_order_relaxed);
      s.invocations = slot->invocations.load(std::memory_order_relaxed);
      s.busy_ns = slot->busy_ns.load(std::memory_order_relaxed);
      s.queue_full_rejections = slot->queue_full_rejections.get();
      d.invocations += s.invocations;
      d.busy_ns += s.busy_ns;
      d.queue_depth_peak = std::max(d.queue_depth_peak, s.queue_depth_peak);
      d.slots.push_back(s);
    }
    if (backend.queue_delay_hist != nullptr) {
      d.queue_delay_p50_ns = backend.queue_delay_hist->percentile(0.50);
      d.queue_delay_p90_ns = backend.queue_delay_hist->percentile(0.90);
      d.queue_delay_p99_ns = backend.queue_delay_hist->percentile(0.99);
    }
    {
      std::lock_guard<std::mutex> state(backend.state_mu);
      d.secure_heap_in_use = backend.device->os().heap_in_use();
      d.boot_count = backend.boot_count;
      const ModuleCache& cache = *backend.cache;
      d.cache_hits = cache.hits();
      d.cache_misses = cache.misses();
      d.cache_evictions = cache.evictions();
      d.pool_hits = cache.pool_hits();
      d.cache_prewarms = cache.prewarms();
      if (detail) {
        // Per-measurement tier states ride the detail flag like the
        // slow-invoke ring: which tier each cached module executes on
        // (interp / AOT / native entries installed) and how hot it runs.
        for (const ModuleCache::TierState& t : cache.tier_states()) {
          ModuleTierStats m;
          m.measurement = t.measurement;
          m.mode = static_cast<std::uint8_t>(t.mode);
          m.functions = t.functions;
          m.native_functions = t.native_functions;
          m.hot_threshold = t.hot_threshold;
          m.calls = t.total_calls;
          d.modules.push_back(m);
        }
      }
    }
    stats.devices.push_back(std::move(d));
  }
  return stats;
}

// -- GatewayClient -----------------------------------------------------------

Status GatewayClient::connect(const std::string& host, std::uint16_t port) {
  auto conn = fabric_.connect(host, port);
  if (!conn.ok()) return Status::err(conn.error());
  conn_ = *conn;
  connected_ = true;
  return {};
}

void GatewayClient::close() {
  // Retire the drain thread FIRST: it waits out every in-flight wire
  // exchange and fulfils every issued future/callback before exiting, so
  // async work is never abandoned mid-air by a teardown. Only then does
  // the connection go away.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_stop_ = true;
  }
  drain_cv_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();
  drain_thread_ = std::thread();
  drain_stop_ = false;  // a later connect() may start async work again
  if (connected_) fabric_.close(conn_);
  connected_ = false;
}

void GatewayClient::enqueue_completion(std::future<Result<Bytes>> wire,
                                       std::function<void(Result<Bytes>)> complete) {
  std::lock_guard<std::mutex> lock(drain_mu_);
  completions_.push_back(Completion{std::move(wire), std::move(complete)});
  if (!drain_thread_.joinable())
    drain_thread_ = std::thread([this] { drain_loop(); });
  drain_cv_.notify_one();
}

void GatewayClient::drain_loop() {
  for (;;) {
    Completion completion;
    {
      std::unique_lock<std::mutex> lock(drain_mu_);
      drain_cv_.wait(lock, [&] { return drain_stop_ || !completions_.empty(); });
      if (completions_.empty()) return;  // stop requested and queue drained
      completion = std::move(completions_.front());
      completions_.pop_front();
    }
    // The wire wait and the decode/fulfil step both run OUTSIDE drain_mu_,
    // so the owning thread keeps issuing async work while this one waits.
    completion.complete(completion.wire.get());
  }
}

Result<Bytes> GatewayClient::call(ByteView request) {
  if (!connected_) return Result<Bytes>::err("gateway client: not connected");
  auto response = fabric_.send_recv(conn_, request);
  if (!response.ok()) return response;
  return open_envelope(*response);
}

std::uint64_t GatewayClient::next_jitter() {
  // xorshift64: cheap, deterministic per client (seeded at construction),
  // good enough to decorrelate retry storms across client threads.
  std::uint64_t x = jitter_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  jitter_state_ = x;
  return x;
}

void GatewayClient::backoff_sleep(int attempt) {
  std::uint64_t window = backoff_.base_ns;
  for (int i = 0; i < attempt && window < backoff_.cap_ns; ++i) window <<= 1;
  if (window > backoff_.cap_ns) window = backoff_.cap_ns;
  // Full jitter: sleep uniformly in (0, window] so retries from many
  // clients spread out instead of re-colliding in lockstep.
  const std::uint64_t sleep_ns = next_jitter() % window + 1;
  std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
}

Result<AttachResponse> GatewayClient::attach(const std::string& client_name) {
  auto payload = call(AttachRequest{client_name}.encode());
  if (!payload.ok()) return Result<AttachResponse>::err(payload.error());
  return AttachResponse::decode(*payload);
}

Result<AttachBatchResponse> GatewayClient::attach_all(
    const std::vector<std::string>& clients) {
  using R = Result<AttachBatchResponse>;
  if (clients.empty()) return R::err("gateway client: empty attach batch");

  // Chunk, then pipeline every chunk as a concurrent exchange on the one
  // connection: wall-clock is the slowest chunk, and the gateway sees the
  // chunks as parallel ATTACH_BATCH requests fanning across its workers.
  std::vector<Bytes> frames;
  for (std::size_t start = 0; start < clients.size(); start += kAttachBatchChunk) {
    AttachBatchRequest chunk;
    const std::size_t end = std::min(clients.size(), start + kAttachBatchChunk);
    chunk.clients.assign(clients.begin() + static_cast<std::ptrdiff_t>(start),
                         clients.begin() + static_cast<std::ptrdiff_t>(end));
    frames.push_back(chunk.encode());
  }
  if (!connected_) return R::err("gateway client: not connected");
  std::vector<Result<Bytes>> replies = fabric_.exchange_all(conn_, std::move(frames));

  // Per-chunk failures become per-result errors at that chunk's indices:
  // sibling chunks may already have attached server-side, and swallowing
  // their session ids would leak sessions the caller can never detach.
  // (Partial success is the documented contract — per lane AND per chunk.)
  AttachBatchResponse merged;
  for (std::size_t c = 0; c < replies.size(); ++c) {
    const std::size_t chunk_size =
        std::min(kAttachBatchChunk, clients.size() - c * kAttachBatchChunk);
    const auto fail_chunk = [&](const std::string& error) {
      for (std::size_t i = 0; i < chunk_size; ++i) {
        AttachBatchResult failed;
        failed.error = error;
        merged.results.push_back(std::move(failed));
      }
    };
    if (!replies[c].ok()) {
      fail_chunk(replies[c].error());
      continue;
    }
    auto payload = open_envelope(*replies[c]);
    if (!payload.ok()) {
      fail_chunk(payload.error());
      continue;
    }
    auto chunk = AttachBatchResponse::decode(*payload);
    if (!chunk.ok() || chunk->results.size() != chunk_size) {
      fail_chunk(chunk.ok() ? "gateway client: attach batch result count mismatch"
                            : chunk.error());
      continue;
    }
    merged.ra_fabric_exchanges += chunk->ra_fabric_exchanges;
    for (AttachBatchResult& result : chunk->results)
      merged.results.push_back(std::move(result));
  }
  return merged;
}

Result<LoadModuleResponse> GatewayClient::load_module(std::uint64_t session_id,
                                                      ByteView binary) {
  LoadModuleRequest request;
  request.session_id = session_id;
  request.binary.assign(binary.begin(), binary.end());
  auto payload = call(request.encode());
  if (!payload.ok()) return Result<LoadModuleResponse>::err(payload.error());
  return LoadModuleResponse::decode(*payload);
}

Result<InvokeResponse> GatewayClient::invoke(const InvokeRequest& request) {
  const Bytes frame = request.encode();
  for (int attempt = 0;; ++attempt) {
    auto payload = call(frame);
    if (payload.ok()) return InvokeResponse::decode(*payload);
    // QUEUE_FULL is backpressure, not failure: back off (jittered, growing)
    // and re-admit instead of the old busy-poll. Anything else is final.
    if (!is_queue_full(payload.error()) || attempt >= backoff_.max_retries)
      return Result<InvokeResponse>::err(payload.error());
    backoff_sleep(attempt);
  }
}

Result<SubmitResponse> GatewayClient::submit(const InvokeRequest& request) {
  auto payload = call(SubmitRequest{request}.encode());
  if (!payload.ok()) return Result<SubmitResponse>::err(payload.error());
  return SubmitResponse::decode(*payload);
}

Result<PollResponse> GatewayClient::poll(std::uint64_t session_id,
                                         std::uint64_t ticket) {
  PollRequest request;
  request.session_id = session_id;
  request.ticket = ticket;
  auto payload = call(request.encode());
  if (!payload.ok()) return Result<PollResponse>::err(payload.error());
  return PollResponse::decode(*payload);
}

// -- async client API --------------------------------------------------------

namespace {

/// Opens the envelope of an async wire reply and decodes the payload,
/// fulfilling `promise` with the result — the tail every *_async call
/// shares, run on the client's drain thread.
template <typename T>
void fulfil_async(const std::shared_ptr<std::promise<Result<T>>>& promise,
                  const Result<Bytes>& wire,
                  Result<T> (*decode)(ByteView)) {
  if (!wire.ok()) {
    promise->set_value(Result<T>::err(wire.error()));
    return;
  }
  auto payload = open_envelope(*wire);
  if (!payload.ok()) {
    promise->set_value(Result<T>::err(payload.error()));
    return;
  }
  promise->set_value(decode(*payload));
}

}  // namespace

std::future<Result<AttachResponse>> GatewayClient::attach_async(
    const std::string& client_name) {
  auto promise = std::make_shared<std::promise<Result<AttachResponse>>>();
  auto future = promise->get_future();
  if (!connected_) {
    promise->set_value(Result<AttachResponse>::err("gateway client: not connected"));
    return future;
  }
  enqueue_completion(fabric_.send_async(conn_, AttachRequest{client_name}.encode()),
                     [promise](Result<Bytes> wire) {
                       fulfil_async(promise, wire, &AttachResponse::decode);
                     });
  return future;
}

std::future<Result<LoadModuleResponse>> GatewayClient::load_async(
    std::uint64_t session_id, Bytes binary) {
  auto promise = std::make_shared<std::promise<Result<LoadModuleResponse>>>();
  auto future = promise->get_future();
  if (!connected_) {
    promise->set_value(
        Result<LoadModuleResponse>::err("gateway client: not connected"));
    return future;
  }
  LoadModuleRequest request;
  request.session_id = session_id;
  request.binary = std::move(binary);
  enqueue_completion(fabric_.send_async(conn_, request.encode()),
                     [promise](Result<Bytes> wire) {
                       fulfil_async(promise, wire, &LoadModuleResponse::decode);
                     });
  return future;
}

std::future<Result<InvokeResponse>> GatewayClient::invoke_async(
    const InvokeRequest& request) {
  auto promise = std::make_shared<std::promise<Result<InvokeResponse>>>();
  auto future = promise->get_future();
  if (!connected_) {
    promise->set_value(Result<InvokeResponse>::err("gateway client: not connected"));
    return future;
  }
  enqueue_completion(fabric_.send_async(conn_, request.encode()),
                     [promise](Result<Bytes> wire) {
                       fulfil_async(promise, wire, &InvokeResponse::decode);
                     });
  return future;
}

std::vector<Bytes> GatewayClient::invoke_chunk_frames(
    const std::vector<InvokeRequest>& requests) {
  std::vector<Bytes> frames;
  for (std::size_t start = 0; start < requests.size(); start += kInvokeBatchChunk) {
    InvokeBatchRequest chunk;
    const std::size_t end = std::min(requests.size(), start + kInvokeBatchChunk);
    for (std::size_t i = start; i < end; ++i)
      chunk.lanes.push_back(InvokeBatchRequest::Lane{
          static_cast<std::uint32_t>(i - start), requests[i]});
    frames.push_back(chunk.encode());
  }
  return frames;
}

void GatewayClient::deliver_invoke_chunk(
    const Result<Bytes>& reply, std::size_t chunk_size,
    const std::function<void(std::size_t, Result<InvokeResponse>)>& deliver) {
  // A chunk-level failure (transport, envelope, malformed frame) becomes a
  // per-request error at every index the chunk carried: sibling chunks may
  // already have executed server-side, so swallowing the whole batch would
  // lose their results.
  const auto fail_chunk = [&](const std::string& error) {
    for (std::size_t i = 0; i < chunk_size; ++i)
      deliver(i, Result<InvokeResponse>::err(error));
  };
  if (!reply.ok()) {
    fail_chunk(reply.error());
    return;
  }
  auto payload = open_envelope(*reply);
  if (!payload.ok()) {
    fail_chunk(payload.error());
    return;
  }
  auto chunk = InvokeBatchResponse::decode(*payload);
  if (!chunk.ok() || chunk->results.size() != chunk_size) {
    fail_chunk(chunk.ok() ? "gateway client: invoke batch result count mismatch"
                          : chunk.error());
    return;
  }
  std::vector<bool> delivered(chunk_size, false);
  for (InvokeBatchResult& result : chunk->results) {
    // Lane ids were issued as positions within the chunk; an id the chunk
    // never opened (or a repeat — the decoder already rejects those) must
    // not scribble over a sibling's slot.
    if (result.lane >= chunk_size || delivered[result.lane]) continue;
    delivered[result.lane] = true;
    deliver(result.lane, result.ok()
                             ? Result<InvokeResponse>(std::move(result.result))
                             : Result<InvokeResponse>::err(result.error));
  }
  for (std::size_t i = 0; i < chunk_size; ++i)
    if (!delivered[i])
      deliver(i, Result<InvokeResponse>::err(
                     "gateway client: invoke batch reply missing lane"));
}

std::vector<Result<InvokeResponse>> GatewayClient::invoke_all(
    const std::vector<InvokeRequest>& requests) {
  std::vector<Result<InvokeResponse>> results(
      requests.size(),
      Result<InvokeResponse>::err("gateway client: not submitted"));
  if (requests.empty()) return results;
  if (!connected_) {
    for (auto& result : results)
      result = Result<InvokeResponse>::err("gateway client: not connected");
    return results;
  }
  // Chunk, then pipeline every chunk as a concurrent exchange on the one
  // connection: wall-clock is the slowest chunk, and the gateway fans each
  // chunk's lanes across its workers in one admission pass — O(1) wire
  // exchanges in the batch size instead of SUBMIT/POLL's per-item round
  // trips.
  std::vector<Result<Bytes>> replies =
      fabric_.exchange_all(conn_, invoke_chunk_frames(requests));
  for (std::size_t c = 0; c < replies.size(); ++c) {
    const std::size_t base = c * kInvokeBatchChunk;
    const std::size_t chunk_size =
        std::min(kInvokeBatchChunk, requests.size() - base);
    deliver_invoke_chunk(replies[c], chunk_size,
                         [&](std::size_t i, Result<InvokeResponse> result) {
                           results[base + i] = std::move(result);
                         });
  }
  return results;
}

Status GatewayClient::invoke_batch_async(const std::vector<InvokeRequest>& requests,
                                         InvokeBatchCallback on_complete) {
  if (requests.empty()) return Status::err("gateway client: empty invoke batch");
  if (!connected_) return Status::err("gateway client: not connected");
  if (!on_complete) return Status::err("gateway client: null completion callback");
  // Every chunk rides its own send_async exchange; the drain thread maps
  // each reply back to per-request callbacks as it lands. Nothing here
  // blocks on the gateway.
  std::vector<Bytes> frames = invoke_chunk_frames(requests);
  for (std::size_t c = 0; c < frames.size(); ++c) {
    const std::size_t base = c * kInvokeBatchChunk;
    const std::size_t chunk_size =
        std::min(kInvokeBatchChunk, requests.size() - base);
    enqueue_completion(
        fabric_.send_async(conn_, std::move(frames[c])),
        [on_complete, base, chunk_size](Result<Bytes> wire) {
          deliver_invoke_chunk(wire, chunk_size,
                               [&](std::size_t i, Result<InvokeResponse> result) {
                                 on_complete(base + i, std::move(result));
                               });
        });
  }
  return {};
}

std::vector<Result<InvokeResponse>> GatewayClient::invoke_batch(
    const std::vector<InvokeRequest>& requests) {
  std::vector<Result<InvokeResponse>> results(
      requests.size(), Result<InvokeResponse>::err("gateway client: not submitted"));
  std::map<std::uint64_t, std::size_t> outstanding;  // ticket -> request index

  // Polls every outstanding ticket once — in ONE pipelined wire exchange
  // (Fabric::exchange_all), not one round-trip per ticket: the server
  // answers all the polls concurrently, so a drain pass costs the slowest
  // single poll instead of their sum. A lone straggler skips the
  // pipelining (and its exchange thread) for a plain blocking poll.
  // Returns whether anything completed (progress for the backpressure
  // loop).
  const auto drain = [&]() {
    if (outstanding.empty()) return false;
    std::vector<std::uint64_t> tickets;
    std::vector<Bytes> frames;
    tickets.reserve(outstanding.size());
    frames.reserve(outstanding.size());
    for (const auto& [ticket, index] : outstanding) {
      PollRequest poll_req;
      poll_req.session_id = requests[index].session_id;
      poll_req.ticket = ticket;
      tickets.push_back(ticket);
      frames.push_back(poll_req.encode());
    }
    std::vector<Result<Bytes>> replies;
    if (frames.size() == 1)
      replies.push_back(connected_ ? fabric_.send_recv(conn_, frames.front())
                                   : Result<Bytes>::err(
                                         "gateway client: not connected"));
    else
      replies = fabric_.exchange_all(conn_, std::move(frames));
    bool progressed = false;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      const auto it = outstanding.find(tickets[i]);
      const std::size_t index = it->second;
      auto payload = replies[i].ok() ? open_envelope(*replies[i])
                                     : Result<Bytes>::err(replies[i].error());
      auto polled = payload.ok() ? PollResponse::decode(*payload)
                                 : Result<PollResponse>::err(payload.error());
      if (!polled.ok()) {
        results[index] = Result<InvokeResponse>::err(polled.error());
        outstanding.erase(it);
        progressed = true;
        continue;
      }
      if (!polled->ready) continue;
      results[index] = polled->error.empty()
                           ? Result<InvokeResponse>(std::move(polled->result))
                           : Result<InvokeResponse>::err(polled->error);
      outstanding.erase(it);
      progressed = true;
    }
    return progressed;
  };

  std::size_t next = 0;
  int stalls = 0;  // consecutive drain passes with no completion
  while (next < requests.size() || !outstanding.empty()) {
    if (next < requests.size()) {
      auto submitted = submit(requests[next]);
      if (submitted.ok()) {
        outstanding[submitted->ticket] = next++;
        stalls = 0;
        continue;  // pipeline: keep submitting while the gateway admits
      }
      if (!is_queue_full(submitted.error())) {
        results[next++] = Result<InvokeResponse>::err(submitted.error());
        continue;
      }
      // QUEUE_FULL backpressure: fall through and drain before retrying.
    }
    // Back off (jittered, growing with consecutive stalls) whenever a
    // drain pass completes nothing — including when outstanding is empty
    // but SUBMIT keeps bouncing (other clients own every slot). Progress
    // resets the curve.
    if (drain())
      stalls = 0;
    else
      backoff_sleep(stalls++);
  }
  return results;
}

Result<GatewayStats> GatewayClient::stats(std::uint64_t session_id, bool detail) {
  StatsRequest request;
  request.session_id = session_id;
  request.detail = detail;
  auto payload = call(request.encode());
  if (!payload.ok()) return Result<GatewayStats>::err(payload.error());
  return GatewayStats::decode(*payload);
}

Status GatewayClient::detach(std::uint64_t session_id) {
  auto payload = call(DetachRequest{session_id}.encode());
  return payload.ok() ? Status{} : Status::err(payload.error());
}

}  // namespace watz::gateway
