#include "gateway/invoke_memo.hpp"

namespace watz::gateway {

std::optional<InvokeMemo::Entry> InvokeMemo::lookup(const std::string& key,
                                                    std::uint64_t now_ns,
                                                    std::uint64_t ttl_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  if (now_ns - it->second.entry.stamp_ns > ttl_ns) {
    map_.erase(it);
    return std::nullopt;
  }
  return it->second.entry;
}

void InvokeMemo::note_hit(const std::string& key, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) return;  // evicted between lookup and the gate
  ++it->second.hits;
  it->second.last_touch = now_ns;
}

void InvokeMemo::store(const std::string& key, Entry entry,
                       std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= capacity_ && !map_.contains(key)) {
    // Hot-aware eviction: fewest hits first, stalest last-touch breaking
    // ties — repeat-deduplicated results outlive one-shot ones.
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.hits < victim->second.hits ||
          (it->second.hits == victim->second.hits &&
           it->second.last_touch < victim->second.last_touch))
        victim = it;
    }
    map_.erase(victim);
  }
  Slot slot;
  slot.entry = std::move(entry);
  slot.entry.stamp_ns = now_ns;  // TTL anchors on the store, not the caller
  slot.last_touch = now_ns;
  map_[key] = std::move(slot);
}

std::size_t InvokeMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

bool InvokeMemo::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.contains(key);
}

}  // namespace watz::gateway
