#include "gateway/module_cache.hpp"

#include "hw/clock.hpp"
#include "wasm/jit/tier.hpp"

namespace watz::gateway {

Result<AppLease> ModuleCache::acquire(const crypto::Sha256Digest& measurement,
                                      ByteView binary, const core::AppConfig& config,
                                      tz::SecureMonitor* monitor) {
  std::lock_guard<std::mutex> lock(mu_);
  tz::SecureMonitor* const bound = monitor ? monitor : &runtime_.primary_monitor();
  auto it = entries_.find(measurement);

  // Cold miss: run the full pipeline and retain the prepared form.
  if (it == entries_.end()) {
    if (binary.empty())
      return Result<AppLease>::err("module cache: measurement unknown and no binary");
    misses_.add();
    const std::uint64_t t0 = hw::monotonic_ns();  // cold launch pays it all
    auto prepared = runtime_.prepare(binary, config.mode, bound);
    if (!prepared.ok()) return Result<AppLease>::err(prepared.error());
    if ((*prepared)->measurement() != measurement)
      return Result<AppLease>::err("module cache: binary does not match measurement");
    make_room((*prepared)->code_bytes(), nullptr);
    Entry entry;
    entry.prepared = std::move(*prepared);
    entry.last_used = ++tick_;
    charged_bytes_.add(entry.prepared->code_bytes());
    // A fresh measurement's tier flushes into the same fleet-wide sinks as
    // every other cached module from its first compile on.
    if (entry.prepared->tier())
      entry.prepared->tier()->bind_metrics(
          tier_compiles_sink_, tier_entries_sink_, tier_fallback_sink_,
          tier_compile_ns_sink_,
          {tier_fallback_float_sink_, tier_fallback_conv_sink_,
           tier_fallback_call_sink_, tier_fallback_other_sink_});
    it = entries_.emplace(measurement, std::move(entry)).first;

    auto app = runtime_.instantiate(it->second.prepared, config, bound);
    if (!app.ok()) return Result<AppLease>::err(app.error());
    ++it->second.live;
    AppLease lease;
    lease.cache = this;
    lease.app = std::move(*app);
    lease.launch_ns = hw::monotonic_ns() - t0;
    return lease;
  }

  Entry& entry = it->second;
  entry.last_used = ++tick_;
  hits_.add();

  // The cached prepared form dictates the execution mode, as on the
  // instantiate path (which rejects a mismatch rather than silently
  // switching modes).
  if (entry.prepared->mode() != config.mode)
    return Result<AppLease>::err(
        "module cache: cached module mode does not match AppConfig.mode");

  // Warmest path: an instance of this module parked by the SAME slot (the
  // monitor an app is bound to is the slot identity — handing it to
  // another slot would let two threads race one sandbox's monitor) whose
  // guest heap matches what the caller asked for (a smaller or larger
  // reservation than requested would silently change the app's memory
  // ceiling).
  for (auto pooled = entry.pool.begin(); pooled != entry.pool.end(); ++pooled) {
    if ((*pooled)->monitor() != bound) continue;
    if ((*pooled)->heap_bytes() != config.heap_bytes) continue;
    pool_hits_.add();
    AppLease lease;
    lease.cache = this;
    lease.app = std::move(*pooled);
    entry.pool.erase(pooled);
    const std::size_t freed = lease.app->heap_bytes();
    entry.pooled_bytes -= freed;
    charged_bytes_.sub(freed);
    ++entry.live;
    lease.module_cache_hit = true;
    lease.pool_hit = true;
    return lease;
  }

  // Warm path: instantiate from the cached prepared form (no Loading)
  // onto the caller's slot monitor.
  const std::uint64_t t0 = hw::monotonic_ns();
  auto app = runtime_.instantiate(entry.prepared, config, bound);
  if (!app.ok()) return Result<AppLease>::err(app.error());
  ++entry.live;
  AppLease lease;
  lease.cache = this;
  lease.app = std::move(*app);
  lease.launch_ns = hw::monotonic_ns() - t0;
  lease.module_cache_hit = true;
  return lease;
}

Status ModuleCache::prepare(const crypto::Sha256Digest& measurement,
                            ByteView binary, wasm::ExecMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.contains(measurement)) return Status{};
  if (binary.empty())
    return Status::err("module cache: prewarm needs the module binary");
  prewarms_.add();
  auto prepared = runtime_.prepare(binary, mode, &runtime_.primary_monitor());
  if (!prepared.ok()) return Status::err(prepared.error());
  if ((*prepared)->measurement() != measurement)
    return Status::err("module cache: binary does not match measurement");
  make_room((*prepared)->code_bytes(), nullptr);
  Entry entry;
  entry.prepared = std::move(*prepared);
  entry.last_used = ++tick_;
  charged_bytes_.add(entry.prepared->code_bytes());
  if (entry.prepared->tier())
    entry.prepared->tier()->bind_metrics(
        tier_compiles_sink_, tier_entries_sink_, tier_fallback_sink_,
        tier_compile_ns_sink_,
        {tier_fallback_float_sink_, tier_fallback_conv_sink_,
         tier_fallback_call_sink_, tier_fallback_other_sink_});
  entries_.emplace(measurement, std::move(entry));
  return Status{};
}

void ModuleCache::release(std::unique_ptr<core::LoadedApp> app) {
  if (!app) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(app->measurement());
  if (it == entries_.end()) return;  // module was evicted meanwhile: drop
  Entry& entry = it->second;
  if (entry.live > 0) --entry.live;
  if (entry.pool.size() >= config_.max_pool_per_module) return;
  // Scrub the sandbox before the next tenant sees it: rebuild memory,
  // globals, table and segments to the freshly-instantiated state, and
  // clear the WASI output buffers. An instance that cannot be reset is
  // dropped rather than pooled.
  if (!app->instance().reinitialize().ok()) return;
  app->wasi().clear_output();
  const std::size_t cost = app->heap_bytes();
  if (charged_bytes_.get() + cost > config_.budget_bytes)
    make_room(cost, &it->first);
  if (charged_bytes_.get() + cost > config_.budget_bytes)
    return;  // still no room
  entry.pooled_bytes += cost;
  charged_bytes_.add(cost);
  entry.pool.push_back(std::move(app));
}

void ModuleCache::forfeit(const crypto::Sha256Digest& measurement) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(measurement);
  if (it != entries_.end() && it->second.live > 0) --it->second.live;
}

std::size_t ModuleCache::sweep_tier_compiles() {
  std::vector<std::shared_ptr<wasm::jit::TierSet>> tiers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tiers.reserve(entries_.size());
    for (const auto& [digest, entry] : entries_)
      if (entry.prepared->tier()) tiers.push_back(entry.prepared->tier());
  }
  // Codegen runs outside mu_: the cache mutex is a leaf held only for map
  // surgery, and slot workers must keep acquiring/releasing while the
  // control plane compiles.
  std::size_t compiled = 0;
  for (const auto& tier : tiers) compiled += tier->compile_pending();
  return compiled;
}

void ModuleCache::bind_tier_metrics(obs::Counter* compiles, obs::Counter* entries,
                                    obs::Counter* fallback_ops,
                                    obs::Histogram* compile_ns,
                                    obs::Counter* fallback_float,
                                    obs::Counter* fallback_conv,
                                    obs::Counter* fallback_call,
                                    obs::Counter* fallback_other) {
  std::lock_guard<std::mutex> lock(mu_);
  tier_compiles_sink_ = compiles;
  tier_entries_sink_ = entries;
  tier_fallback_sink_ = fallback_ops;
  tier_fallback_float_sink_ = fallback_float;
  tier_fallback_conv_sink_ = fallback_conv;
  tier_fallback_call_sink_ = fallback_call;
  tier_fallback_other_sink_ = fallback_other;
  tier_compile_ns_sink_ = compile_ns;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier())
      entry.prepared->tier()->bind_metrics(
          compiles, entries, fallback_ops, compile_ns,
          {fallback_float, fallback_conv, fallback_call, fallback_other});
}

std::uint64_t ModuleCache::tier_up_compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->tier_up_compiles();
  return n;
}

std::uint64_t ModuleCache::native_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->native_entries();
  return n;
}

std::uint64_t ModuleCache::jit_fallback_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->fallback_ops();
  return n;
}

std::uint64_t ModuleCache::jit_fallback_float() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->fallback_float();
  return n;
}

std::uint64_t ModuleCache::jit_fallback_conv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->fallback_conv();
  return n;
}

std::uint64_t ModuleCache::jit_fallback_call() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->fallback_call();
  return n;
}

std::uint64_t ModuleCache::jit_fallback_other() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->fallback_other();
  return n;
}

std::size_t ModuleCache::native_code_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [digest, entry] : entries_)
    if (entry.prepared->tier()) n += entry.prepared->tier()->native_code_bytes();
  return n;
}

std::vector<ModuleCache::TierState> ModuleCache::tier_states() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TierState> states;
  states.reserve(entries_.size());
  for (const auto& [digest, entry] : entries_) {
    TierState state;
    state.measurement = digest;
    state.mode = entry.prepared->mode();
    state.functions =
        static_cast<std::uint32_t>(entry.prepared->compiled().size());
    if (const auto& tier = entry.prepared->tier()) {
      state.native_functions = tier->native_functions();
      state.hot_threshold = tier->hot_threshold();
      state.total_calls = tier->total_calls();
    }
    states.push_back(state);
  }
  return states;
}

void ModuleCache::make_room(std::size_t incoming, const crypto::Sha256Digest* keep) {
  while (charged_bytes_.get() + incoming >
         config_.budget_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (keep && it->first == *keep) continue;
      // A module live in any slot is pinned: evicting it would strand the
      // checked-out instances' shared AOT image accounting.
      if (it->second.live > 0) continue;
      if (victim == entries_.end() || it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == entries_.end()) return;  // nothing evictable
    charged_bytes_.sub(entry_bytes(victim->second));
    entries_.erase(victim);
    evictions_.add();
  }
}

}  // namespace watz::gateway
