// The single-invoke result memo: a bounded, TTL'd map from the invoke
// dedup key (measurement + entry + args + heap) to the most recent
// successful response, remembering WHICH device produced it at WHAT boot
// count and FOR WHICH session.
//
// Two duties since the chaos work:
//
//   * Amortisation (the original SUBMIT fast path): a twin submitted
//     within the TTL by a session trusting the producing device rides the
//     memoised result instead of entering a sandbox.
//
//   * Replay absorption (exactly-once under failure): INVOKE and
//     INVOKE_BATCH lanes consult the memo before admission, so a client
//     retrying a request whose RESPONSE was lost in flight (the fabric
//     stall fault — the sandbox ran, the reply didn't arrive) redeems the
//     recorded result instead of executing again. The producer_session
//     field is what makes this safe across reboots: a session redeeming
//     its OWN result needs no evidence-freshness gate (the result was
//     produced under evidence that was fresh at execution time, and the
//     TTL bounds the window), whereas a boot-count bump would fail the
//     has_fresh gate and silently re-execute the lane.
//
// Eviction is hot-aware: the victim is the entry with the FEWEST hits,
// stalest last-touch breaking ties — a measurement the fleet keeps
// re-deduplicating stays resident while one-shot results cycle out
// (previously eviction was purely stalest-first, so a burst of one-shot
// SUBMITs could flush the hottest entry).
//
// Thread safety: every method locks the internal mutex; the gateway's
// evidence trust gate runs OUTSIDE it (lookup returns a copy, note_hit
// re-locks once the gate passes).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "gateway/protocol.hpp"

namespace watz::gateway {

class InvokeMemo {
 public:
  struct Entry {
    InvokeResponse response;
    std::string device;                  ///< hostname that executed
    std::uint64_t boot_count = 0;        ///< at execution (freshness gate)
    std::uint64_t producer_session = 0;  ///< session whose invoke ran
    std::uint64_t stamp_ns = 0;          ///< execution time (TTL anchor)
  };

  explicit InvokeMemo(std::size_t capacity) : capacity_(capacity) {}

  /// TTL-checked copy of the entry under `key`; expired entries are
  /// erased en passant. No hit accounting here — the caller's trust gate
  /// decides whether this becomes a hit (note_hit) or a miss.
  std::optional<Entry> lookup(const std::string& key, std::uint64_t now_ns,
                              std::uint64_t ttl_ns);

  /// Records a served hit: bumps the entry's heat and freshens its
  /// last-touch, both of which the eviction order keys on.
  void note_hit(const std::string& key, std::uint64_t now_ns);

  /// Inserts/overwrites the entry under `key`. At capacity the entry with
  /// the fewest hits is evicted, stalest last-touch breaking ties.
  void store(const std::string& key, Entry entry, std::uint64_t now_ns);

  std::size_t size() const;
  bool contains(const std::string& key) const;

 private:
  struct Slot {
    Entry entry;
    std::uint64_t hits = 0;
    std::uint64_t last_touch = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> map_;
};

}  // namespace watz::gateway
