// Client sessions for the attested execution gateway.
//
// The expensive part of trusting a device is the RA handshake (Tab 3: four
// protocol messages, two network round-trips, ECDHE + ECDSA on both ends).
// The session manager amortises it: the handshake runs once per
// (client session, device) pair and the verified evidence is cached under
// the session id. Policy decides when the cache goes stale — a TTL on the
// evidence, or the device's boot count moving (a rebooted or swapped board
// has a new trusted-OS state and must re-prove itself).
//
// Concurrency: sessions are handed out as shared_ptr so a work item queued
// on a backend worker can outlive a concurrent detach. detach() marks the
// session closed (checked by every worker before touching it) and unlinks
// it from the table; the state itself is freed when the last in-flight
// reference drops. The per-session evidence map has its own mutex, and the
// lock is NEVER held across a handshake — two workers attesting the same
// session against different devices proceed in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "attestation/evidence.hpp"
#include "common/result.hpp"

namespace watz::gateway {

struct SessionPolicy {
  /// Evidence older than this is re-collected. Default: never expires by
  /// age (boot-count changes still force re-attestation).
  std::uint64_t evidence_ttl_ns = ~0ull;
};

/// Cached appraisal result for one device under one session.
struct DeviceAttestation {
  attestation::Evidence evidence;
  std::uint64_t attested_at_ns = 0;
  std::uint64_t boot_count = 0;
};

struct Session {
  std::uint64_t id = 0;
  std::string client;
  std::uint64_t created_at_ns = 0;
  std::atomic<std::uint64_t> invocations{0};
  /// Set by detach; queued work observing it fails instead of executing.
  std::atomic<bool> closed{false};
  /// Soft slot-affinity hint: 1 + the fleet-wide id of the sandbox slot
  /// that last completed an invoke for this session (0 = none yet).
  /// Placement prefers the hinted slot when it is idle, so repeat invokes
  /// land on the slot whose warm pool already holds this session's
  /// instance. A hint, not a binding: a busy or vanished slot is simply
  /// ignored.
  std::atomic<std::uint64_t> affinity_slot{0};
  std::mutex mu;  ///< guards `attested` (leaf lock; never held across I/O)
  std::map<std::string, DeviceAttestation> attested;  // keyed by device hostname
};

using SessionPtr = std::shared_ptr<Session>;

/// Runs the full RA exchange against one device and returns its evidence
/// (already appraised by the gateway's verifier en route — an error means
/// the device failed appraisal).
using HandshakeFn = std::function<Result<attestation::Evidence>()>;

/// Fabric round-trips one WaTZ handshake costs (msg0->msg1, msg2->msg3).
inline constexpr std::uint32_t kRaExchangesPerHandshake = 2;

class SessionManager {
 public:
  explicit SessionManager(SessionPolicy policy = {}) : policy_(policy) {}

  SessionPtr attach(std::string client, std::uint64_t now_ns);
  SessionPtr find(std::uint64_t session_id);

  /// Unlinks the session and marks it closed. Work already queued against
  /// it holds its own reference and fails fast on the closed flag, so no
  /// worker ever dereferences freed session state.
  bool detach(std::uint64_t session_id);

  /// Ensures `session` holds fresh evidence for `device_name` at
  /// `boot_count`. Runs `handshake` only when the cached evidence is
  /// missing or stale under the policy (without holding the session lock
  /// across the exchange). Returns the number of RA message exchanges this
  /// call performed (0 == evidence cache hit).
  Result<std::uint32_t> ensure_attested(Session& session, const std::string& device_name,
                                        std::uint64_t boot_count, std::uint64_t now_ns,
                                        const HandshakeFn& handshake);

  /// Records evidence collected OUTSIDE ensure_attested — the batched
  /// attach path runs one pipelined protocol exchange covering many
  /// sessions and then deposits each lane's evidence here. Counts as a run
  /// handshake; fails without touching the cache when the session was
  /// detached while the batch was in flight.
  Status record_attestation(Session& session, const std::string& device_name,
                            std::uint64_t boot_count, std::uint64_t now_ns,
                            attestation::Evidence evidence);

  /// True when `session` holds evidence for `device_name` that is fresh
  /// under the policy at `now_ns` (same boot count, TTL not lapsed). Pure
  /// read — never runs a handshake. The batch-dedup path uses it to decide
  /// whether a follower lane may ride a leader's execution.
  bool has_fresh(Session& session, const std::string& device_name,
                 std::uint64_t boot_count, std::uint64_t now_ns) const;

  /// Sessions whose evidence for `device_name` (at `boot_count`) is older
  /// than `age_threshold_ns` but not yet detached — what the gateway's
  /// background renewal sweep re-attests BEFORE the TTL lapses, so the
  /// invoke hot path never pays a lazy handshake. Lock discipline: the
  /// session table lock and each session's lock are taken in sequence,
  /// never nested.
  std::vector<SessionPtr> renewal_candidates(const std::string& device_name,
                                             std::uint64_t boot_count,
                                             std::uint64_t now_ns,
                                             std::uint64_t age_threshold_ns);

  const SessionPolicy& policy() const noexcept { return policy_; }
  void set_policy(SessionPolicy policy) noexcept { policy_ = policy; }

  std::size_t active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
  }
  std::uint64_t sessions_total() const noexcept {
    return sessions_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t handshakes_run() const noexcept {
    return handshakes_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t handshakes_reused() const noexcept {
    return handshakes_reused_.load(std::memory_order_relaxed);
  }

 private:
  SessionPolicy policy_;
  mutable std::mutex mu_;  // guards sessions_ and next_id_
  std::map<std::uint64_t, SessionPtr> sessions_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> sessions_total_{0};
  std::atomic<std::uint64_t> handshakes_run_{0};
  std::atomic<std::uint64_t> handshakes_reused_{0};
};

}  // namespace watz::gateway
