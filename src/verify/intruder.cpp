#include "verify/intruder.hpp"

namespace watz::verify {

void IntruderKnowledge::observe(const Term& term) {
  known_.insert(term);
  saturate_decompose();
}

void IntruderKnowledge::saturate_decompose() {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Term> additions;
    for (const Term& t : known_) {
      switch (t.op()) {
        case Op::Pair:
          additions.push_back(t.children()[0]);
          additions.push_back(t.children()[1]);
          break;
        case Op::Sign:
          // Signatures do not hide the signed message.
          additions.push_back(t.children()[1]);
          break;
        case Op::Enc:
          // Decrypt only with the key.
          if (known_.contains(t.children()[0])) additions.push_back(t.children()[1]);
          break;
        default:
          break;
      }
    }
    for (const Term& t : additions) {
      if (known_.insert(t).second) changed = true;
    }
  }
}

bool IntruderKnowledge::derivable(const Term& target) const {
  if (known_.contains(target)) return true;
  if (target.depth() > max_depth_) return false;
  switch (target.op()) {
    case Op::Atom:
      return false;  // fresh atoms cannot be guessed
    case Op::Pub:
      // Pub(x) derivable by computing it from x (or already observed).
      return derivable(target.children()[0]);
    case Op::Dh: {
      // Dh(x, y) (normalised over scalars): derivable from either scalar
      // plus the other party's public key.
      const Term& x = target.children()[0];
      const Term& y = target.children()[1];
      const bool via_x = derivable(x) && derivable(Term::pub(y));
      const bool via_y = derivable(y) && derivable(Term::pub(x));
      return via_x || via_y;
    }
    case Op::Kdf:
      return derivable(target.children()[0]);
    case Op::Sign:
      // Forging requires the signing scalar (and the message).
      return derivable(target.children()[0]) && derivable(target.children()[1]);
    case Op::Mac:
    case Op::Enc:
      return derivable(target.children()[0]) && derivable(target.children()[1]);
    case Op::Hash:
      return derivable(target.children()[0]);
    case Op::Pair:
      return derivable(target.children()[0]) && derivable(target.children()[1]);
  }
  return false;
}

}  // namespace watz::verify
