// Dolev-Yao intruder knowledge: saturation closure over observed terms.
//
// The intruder can do everything except break cryptography:
//   decompose  pairs; read the message inside a signature; decrypt Enc(k,m)
//              and verify Mac(k,m) only with k
//   compose    pairs, hashes, MACs, encryptions, KDFs from known terms;
//              signatures only with the signing scalar; Pub(x) from x;
//              Dh(e, P) from an own scalar e and any known public key P
//   never      invert Hash/Kdf, recover x from Pub(x) or from Dh
#pragma once

#include <set>

#include "verify/term.hpp"

namespace watz::verify {

class IntruderKnowledge {
 public:
  /// `max_depth` bounds composed-term size during saturation (composition
  /// is only needed to *derive* targets, so the bound is the deepest
  /// target + 1).
  explicit IntruderKnowledge(std::size_t max_depth = 6) : max_depth_(max_depth) {}

  /// Adds an observed term and re-saturates (decomposition is unbounded;
  /// composition is driven lazily by derivable()).
  void observe(const Term& term);

  /// True if the intruder can derive `target` from current knowledge using
  /// decomposition + bounded composition.
  bool derivable(const Term& target) const;

  std::size_t size() const noexcept { return known_.size(); }
  bool knows_atom(const std::string& name) const {
    return known_.contains(Term::atom(name));
  }

 private:
  void saturate_decompose();

  std::set<Term> known_;
  std::size_t max_depth_;
};

}  // namespace watz::verify
