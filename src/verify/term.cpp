#include "verify/term.hpp"

#include <algorithm>

namespace watz::verify {

Term Term::atom(std::string name) { return Term(Op::Atom, std::move(name), {}); }

Term Term::pub(const Term& scalar) { return Term(Op::Pub, "", {scalar}); }

Term Term::dh(const Term& scalar, const Term& pub_key) {
  // Normalise: Dh over the two *scalars* in canonical order, so that
  // dh(a, Pub(b)) == dh(b, Pub(a)). A Dh over a non-Pub right operand keeps
  // the raw shape (it cannot be computed by honest agents anyway).
  if (pub_key.op() == Op::Pub) {
    Term x = scalar;
    Term y = pub_key.children()[0];
    if (y < x) std::swap(x, y);
    return Term(Op::Dh, "", {x, y});
  }
  return Term(Op::Dh, "", {scalar, pub_key});
}

Term Term::kdf(const Term& secret, const std::string& label) {
  return Term(Op::Kdf, label, {secret});
}

Term Term::sign(const Term& key, const Term& message) {
  return Term(Op::Sign, "", {key, message});
}

Term Term::mac(const Term& key, const Term& message) {
  return Term(Op::Mac, "", {key, message});
}

Term Term::enc(const Term& key, const Term& message) {
  return Term(Op::Enc, "", {key, message});
}

Term Term::hash(const Term& message) { return Term(Op::Hash, "", {message}); }

Term Term::pair(const Term& a, const Term& b) { return Term(Op::Pair, "", {a, b}); }

bool Term::operator==(const Term& other) const {
  return op_ == other.op_ && name_ == other.name_ && children_ == other.children_;
}

bool Term::operator<(const Term& other) const {
  if (op_ != other.op_) return op_ < other.op_;
  if (name_ != other.name_) return name_ < other.name_;
  return std::lexicographical_compare(children_.begin(), children_.end(),
                                      other.children_.begin(), other.children_.end());
}

std::string Term::to_string() const {
  switch (op_) {
    case Op::Atom: return name_;
    case Op::Pub: return "Pub(" + children_[0].to_string() + ")";
    case Op::Dh:
      return "Dh(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Op::Kdf: return "Kdf(" + children_[0].to_string() + "," + name_ + ")";
    case Op::Sign:
      return "Sign(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Op::Mac:
      return "Mac(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Op::Enc:
      return "Enc(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Op::Hash: return "Hash(" + children_[0].to_string() + ")";
    case Op::Pair:
      return "<" + children_[0].to_string() + "," + children_[1].to_string() + ">";
  }
  return "?";
}

std::size_t Term::depth() const {
  std::size_t best = 0;
  for (const Term& child : children_) best = std::max(best, child.depth());
  return best + 1;
}

}  // namespace watz::verify
