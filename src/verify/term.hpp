// Symbolic terms for the Dolev-Yao analysis of the WaTZ protocol.
//
// The paper verifies the protocol with Scyther under the Dolev-Yao intruder
// model (SS VII): the adversary controls the channel completely but cannot
// break cryptography. This module is an executable stand-in: the same
// perfect-cryptography term algebra, with an intruder-knowledge saturation
// engine (intruder.hpp) and the protocol roles modelled on top
// (protocol_model.hpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace watz::verify {

enum class Op : std::uint8_t {
  Atom,   ///< named constant (scalar, nonce, identity, payload)
  Pub,    ///< Pub(x): public half of scalar x (g^x); one child
  Dh,     ///< Dh(x, Pub(y)) == Dh(y, Pub(x)): the ECDH shared secret
  Kdf,    ///< Kdf(secret, label-atom)
  Sign,   ///< Sign(x, m): signature by scalar x over m (reveals m)
  Mac,    ///< Mac(k, m)
  Enc,    ///< Enc(k, m): authenticated encryption
  Hash,   ///< Hash(m)
  Pair,   ///< Pair(a, b)
};

/// Immutable symbolic term. Terms are compared structurally; Dh normalises
/// its operands so g^xy == g^yx.
class Term {
 public:
  static Term atom(std::string name);
  static Term pub(const Term& scalar);
  static Term dh(const Term& scalar, const Term& pub_key);
  static Term kdf(const Term& secret, const std::string& label);
  static Term sign(const Term& key, const Term& message);
  static Term mac(const Term& key, const Term& message);
  static Term enc(const Term& key, const Term& message);
  static Term hash(const Term& message);
  static Term pair(const Term& a, const Term& b);

  Op op() const noexcept { return op_; }
  const std::string& name() const noexcept { return name_; }
  const std::vector<Term>& children() const noexcept { return children_; }

  bool operator==(const Term& other) const;
  bool operator<(const Term& other) const;  // canonical ordering

  std::string to_string() const;
  std::size_t depth() const;

 private:
  Term(Op op, std::string name, std::vector<Term> children)
      : op_(op), name_(std::move(name)), children_(std::move(children)) {}

  Op op_ = Op::Atom;
  std::string name_;           // Atom name or Kdf label
  std::vector<Term> children_;
};

}  // namespace watz::verify
