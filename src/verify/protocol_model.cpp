#include "verify/protocol_model.hpp"

namespace watz::verify {

namespace {

/// Fixed cast of the analysis.
struct Cast {
  // Long-term secrets.
  Term v_identity = Term::atom("skV");   // verifier's ECDSA identity scalar
  Term a_attest = Term::atom("skA");     // device attestation scalar
  // Fresh session scalars.
  Term a = Term::atom("a");              // attester ephemeral
  Term v = Term::atom("v");              // verifier ephemeral
  Term e = Term::atom("e");              // the intruder's own scalar
  // Payloads.
  Term claim = Term::atom("claim");
  Term blob = Term::atom("secret_blob");

  Term ga() const { return Term::pub(a); }
  Term gv() const { return Term::pub(v); }
  Term shared() const { return Term::dh(a, Term::pub(v)); }
  Term km() const { return Term::kdf(shared(), "SMK"); }
  Term ke() const { return Term::kdf(shared(), "SEK"); }
  Term anchor() const { return Term::hash(Term::pair(ga(), gv())); }

  Term evidence() const {
    const Term body = Term::pair(anchor(), Term::pair(claim, Term::pub(a_attest)));
    return Term::pair(body, Term::sign(a_attest, body));
  }

  /// content1 := Gv || V || Sign_V(Gv || Ga); msg1 adds the MAC.
  Term msg1(bool with_signature) const {
    const Term ident = Term::pub(v_identity);
    const Term sig = Term::sign(v_identity, Term::pair(gv(), ga()));
    Term content = with_signature ? Term::pair(gv(), Term::pair(ident, sig))
                                  : Term::pair(gv(), ident);
    return Term::pair(content, Term::mac(km(), content));
  }

  Term msg2() const {
    const Term content = Term::pair(ga(), evidence());
    return Term::pair(content, Term::mac(km(), content));
  }

  Term msg3() const { return Term::enc(ke(), blob); }
};

/// The intruder observes a complete honest run plus its own capabilities.
IntruderKnowledge observe_honest_run(const Cast& cast, bool with_signature) {
  IntruderKnowledge intruder;
  intruder.observe(cast.e);                       // its own scalar
  intruder.observe(Term::pub(cast.v_identity));   // public identities...
  intruder.observe(Term::pub(cast.a_attest));     // ...and endorsements are public
  intruder.observe(cast.claim);                   // reference values are public
  // Wire traffic: msg0..msg3.
  intruder.observe(cast.ga());
  intruder.observe(cast.msg1(with_signature));
  intruder.observe(cast.msg2());
  intruder.observe(cast.msg3());
  return intruder;
}

/// Does the attester accept a candidate msg1 carrying session key `gx`?
/// Acceptance per SS IV(c): identity must match the hardcoded V, and the
/// signature Sign_V(gx || Ga) must verify. In the symbolic model the
/// intruder must be able to *produce* that signature term.
bool attacker_can_make_accepted_msg1(const Cast& cast, const IntruderKnowledge& intruder,
                                     const Term& gx, bool require_signature) {
  if (!intruder.derivable(gx)) return false;
  if (!require_signature) {
    // Broken variant: no signature to forge; only the MAC must match, and
    // the attester derives the MAC key itself, so any (gx, V) passes.
    return true;
  }
  const Term needed_sig = Term::sign(cast.v_identity, Term::pair(gx, cast.ga()));
  return intruder.derivable(needed_sig);
}

std::vector<ClaimResult> analyse(bool with_signature) {
  Cast cast;
  IntruderKnowledge intruder = observe_honest_run(cast, with_signature);
  std::vector<ClaimResult> results;

  auto secret = [&](const char* label, const Term& term) {
    const bool leaked = intruder.derivable(term);
    results.push_back({std::string("secrecy of ") + label, !leaked,
                       leaked ? "intruder derives " + term.to_string() : "safe"});
  };

  // --- secrecy claims (the paper checks exactly these) ---------------------
  secret("attester session scalar a", cast.a);
  secret("verifier session scalar v", cast.v);
  secret("ECDH shared secret", cast.shared());
  secret("MAC key Km", cast.km());
  secret("encryption key Ke", cast.ke());
  secret("secret blob", cast.blob);
  secret("verifier identity scalar", cast.v_identity);
  secret("attestation key scalar", cast.a_attest);

  // --- agreement: can an active intruder get the attester to accept a msg1
  // whose session key is NOT the verifier's? (masquerade / MITM) ----------
  {
    const Term rogue_gx = Term::pub(cast.e);
    const bool mitm =
        attacker_can_make_accepted_msg1(cast, intruder, rogue_gx, with_signature);
    results.push_back({"agreement (no MITM key substitution)", !mitm,
                       mitm ? "intruder-controlled Gv accepted by attester"
                            : "only the verifier's signed Gv is acceptable"});
  }

  // --- aliveness: a replayed msg1 from a *different* session (stale Gv
  // signed against a different Ga) must not be acceptable either. ----------
  {
    const Term stale_ga = Term::pub(Term::atom("a_old"));
    // From an old run the intruder holds Sign_V(Gv_old || Ga_old):
    IntruderKnowledge replay = intruder;
    const Term gv_old = Term::pub(Term::atom("v_old"));
    replay.observe(Term::sign(cast.v_identity, Term::pair(gv_old, stale_ga)));
    replay.observe(gv_old);
    const bool replayable =
        attacker_can_make_accepted_msg1(cast, replay, gv_old, with_signature);
    results.push_back({"aliveness (msg1 replay rejected)", !replayable,
                       replayable ? "stale signed Gv accepted in a new session"
                                  : "signature binds Gv to the fresh Ga"});
  }

  // --- evidence binding: evidence from another session (different anchor)
  // cannot be re-targeted, because the anchor is hashed into the signed
  // body and the verifier recomputes it from its own session keys. ---------
  {
    const Term other_anchor =
        Term::hash(Term::pair(Term::pub(cast.e), cast.gv()));
    const Term rebound_body =
        Term::pair(other_anchor, Term::pair(cast.claim, Term::pub(cast.a_attest)));
    const bool forgeable = intruder.derivable(Term::sign(cast.a_attest, rebound_body));
    results.push_back({"evidence bound to session anchor", !forgeable,
                       forgeable ? "intruder re-signs evidence for its own session"
                                 : "attestation signature unforgeable"});
  }

  // --- reachability: both roles complete on the honest trace --------------
  {
    // The attester decrypts msg3 with Ke; the verifier accepted msg2. In
    // the model this amounts to the honest terms being well-formed, which
    // construction guarantees; record it explicitly.
    results.push_back({"reachability (honest run completes)", true,
                       "msg0..msg3 exchanged, blob delivered"});
  }

  return results;
}

}  // namespace

std::vector<ClaimResult> analyse_watz_protocol() { return analyse(true); }

std::vector<ClaimResult> analyse_broken_protocol() { return analyse(false); }

}  // namespace watz::verify
