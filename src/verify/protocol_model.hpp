// Symbolic model of the WaTZ remote-attestation protocol (Table II) and
// the security claims the paper checks with Scyther (SS VII):
//   secrecy      of the private session keys, the shared secret / derived
//                keys, and the secret blob
//   aliveness /  (weak & non-injective) agreement: a completing attester
//   agreement    implies the intended verifier ran a matching session
//   reachability both roles can complete (the protocol is not vacuous)
//
// The model runs an honest session observed by the intruder, lets an
// *active* intruder attempt message substitutions, and reports which
// claims hold.
#pragma once

#include <string>
#include <vector>

#include "verify/intruder.hpp"

namespace watz::verify {

struct ClaimResult {
  std::string claim;
  bool holds = false;
  std::string detail;
};

/// Runs the full analysis and returns one result per claim (all must hold).
std::vector<ClaimResult> analyse_watz_protocol();

/// Sanity check of the analyser itself: a deliberately broken variant of
/// the protocol (msg1 without the signature over the session keys) must
/// FAIL the agreement claim — proving the checker can detect attacks.
std::vector<ClaimResult> analyse_broken_protocol();

}  // namespace watz::verify
