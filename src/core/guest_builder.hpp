// Canonical guest applications assembled with the module builder.
//
// No offline Wasm toolchain exists in this environment, so the standard
// attester application (the one the paper compiles from C with WASI-SDK) is
// generated programmatically. The verifier's identity key is embedded in
// the module's data segment — therefore covered by the code measurement,
// which is the property the protocol relies on (SS IV, requirement 2).
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "crypto/p256.hpp"

namespace watz::core {

struct AttesterAppLayout {
  static constexpr std::uint32_t kHostPtr = 0;      // hostname string
  static constexpr std::uint32_t kIdentityPtr = 64;  // 65-byte SEC1 key
  static constexpr std::uint32_t kAnchorPtr = 160;   // 32-byte anchor out
  static constexpr std::uint32_t kNReadPtr = 200;    // u32 out
  static constexpr std::uint32_t kSecretPtr = 256;   // received blob
};

/// Builds a Wasm application that exports:
///   attest() -> i32 : full WASI-RA flow (handshake, collect+send quote,
///                     receive data, dispose); returns the secret size or a
///                     negative error code. The secret lands at kSecretPtr.
///   first_secret_byte() -> i32 : reads the first byte of the secret.
/// `memory_pages` sizes the guest memory (the secret must fit).
Bytes build_attester_app(const crypto::EcPoint& verifier_identity,
                         const std::string& verifier_host, std::uint16_t port,
                         std::uint32_t memory_pages = 64);

}  // namespace watz::core
