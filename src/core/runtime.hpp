// The WaTZ trusted runtime (SS III): a trusted application hosting Wasm
// sandboxes in the secure world.
//
// Launch path, exactly as Fig 4 instruments it:
//   1. the normal world places the AOT Wasm binary in a shared buffer and
//      triggers WaTZ through the secure monitor (Transition);
//   2. WaTZ allocates executable secure memory via the kernel extension and
//      copies the bytecode in (Memory allocation);
//   3. the bytecode is measured -- SHA-256, the future attestation claim
//      (Hashing);
//   4. the runtime environment is created and the WASI / WASI-RA host
//      symbols are registered (Initialisation);
//   5. the module is decoded, validated and AOT-translated (Loading);
//   6. linking + segment evaluation (Instantiate); then execution.
#pragma once

#include <memory>
#include <string>

#include "attestation/service.hpp"
#include "core/wasi_ra.hpp"
#include "crypto/fortuna.hpp"
#include "optee/trusted_os.hpp"
#include "tz/monitor.hpp"
#include "wasi/wasi.hpp"
#include "wasm/instance.hpp"

namespace watz::core {

/// Nanosecond cost of each launch phase (Fig 4 categories).
struct StartupBreakdown {
  std::uint64_t transition_ns = 0;
  std::uint64_t memory_allocation_ns = 0;
  std::uint64_t hashing_ns = 0;
  std::uint64_t initialisation_ns = 0;
  std::uint64_t loading_ns = 0;
  std::uint64_t instantiate_ns = 0;
  std::uint64_t execution_ns = 0;  ///< until the first instruction retires

  std::uint64_t total_ns() const {
    return transition_ns + memory_allocation_ns + hashing_ns + initialisation_ns +
           loading_ns + instantiate_ns + execution_ns;
  }
};

struct AppConfig {
  std::vector<std::string> args;
  /// Guest heap reservation charged against the secure heap (the paper's
  /// compile-time TA heap size; e.g. 12 MB for PolyBench, 25 MB for SQLite).
  std::size_t heap_bytes = 2 * 1024 * 1024;
  wasm::ExecMode mode = wasm::ExecMode::Aot;
};

/// One sandboxed Wasm application loaded in the secure world.
class LoadedApp {
 public:
  const crypto::Sha256Digest& measurement() const noexcept { return measurement_; }
  const StartupBreakdown& startup() const noexcept { return startup_; }
  wasm::Instance& instance() noexcept { return *instance_; }
  wasi::WasiEnv& wasi() noexcept { return *wasi_env_; }
  WasiRaEnv& wasi_ra() noexcept { return *wasi_ra_env_; }

  /// Invokes an exported function inside the sandbox, crossing the world
  /// boundary (charged by the monitor).
  Result<std::vector<wasm::Value>> invoke(const std::string& entry,
                                          std::span<const wasm::Value> args);

 private:
  friend class WatzRuntime;
  crypto::Sha256Digest measurement_{};
  StartupBreakdown startup_{};
  optee::SecureAlloc code_memory_;  // executable pages holding the bytecode
  optee::SecureAlloc heap_memory_;  // guest heap reservation
  std::unique_ptr<wasi::WasiEnv> wasi_env_;
  std::unique_ptr<WasiRaEnv> wasi_ra_env_;
  std::unique_ptr<wasm::ImportResolver> imports_;
  std::unique_ptr<wasm::Instance> instance_;
  tz::SecureMonitor* monitor_ = nullptr;
};

class WatzRuntime {
 public:
  WatzRuntime(optee::TrustedOs& os, tz::SecureMonitor& monitor,
              const attestation::AttestationService& attestation_service);

  /// Launches a Wasm application from a normal-world binary. The full
  /// paper flow: shared buffer -> secure copy -> measure -> load -> run
  /// until the first instruction (the start/_start entry is NOT invoked;
  /// call LoadedApp::invoke for that).
  Result<std::unique_ptr<LoadedApp>> launch(ByteView wasm_binary, AppConfig config);

  std::uint64_t apps_launched() const noexcept { return apps_launched_; }

 private:
  optee::TrustedOs& os_;
  tz::SecureMonitor& monitor_;
  const attestation::AttestationService& attestation_;
  crypto::Fortuna app_rng_;
  std::uint64_t apps_launched_ = 0;
};

}  // namespace watz::core
