// The WaTZ trusted runtime (SS III): a trusted application hosting Wasm
// sandboxes in the secure world.
//
// Launch path, exactly as Fig 4 instruments it:
//   1. the normal world places the AOT Wasm binary in a shared buffer and
//      triggers WaTZ through the secure monitor (Transition);
//   2. WaTZ allocates executable secure memory via the kernel extension and
//      copies the bytecode in (Memory allocation);
//   3. the bytecode is measured -- SHA-256, the future attestation claim
//      (Hashing);
//   4. the runtime environment is created and the WASI / WASI-RA host
//      symbols are registered (Initialisation);
//   5. the module is decoded, validated and AOT-translated (Loading);
//   6. linking + segment evaluation (Instantiate); then execution.
//
// The pipeline is split at the cacheable boundary: phases 1-3+5 produce a
// PreparedModule (everything derivable from the bytes alone), phases 4+6
// consume one and produce a LoadedApp. launch() composes both; the gateway
// module cache keeps PreparedModules so repeat launches of the same
// measurement skip the dominant Loading phase entirely.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "attestation/service.hpp"
#include "core/wasi_ra.hpp"
#include "crypto/fortuna.hpp"
#include "optee/trusted_os.hpp"
#include "tz/monitor.hpp"
#include "wasi/wasi.hpp"
#include "wasm/instance.hpp"

namespace watz::core {

/// Nanosecond cost of each launch phase (Fig 4 categories).
struct StartupBreakdown {
  std::uint64_t transition_ns = 0;
  std::uint64_t memory_allocation_ns = 0;
  std::uint64_t hashing_ns = 0;
  std::uint64_t initialisation_ns = 0;
  std::uint64_t loading_ns = 0;
  std::uint64_t instantiate_ns = 0;
  std::uint64_t execution_ns = 0;  ///< until the first instruction retires

  std::uint64_t total_ns() const {
    return transition_ns + memory_allocation_ns + hashing_ns + initialisation_ns +
           loading_ns + instantiate_ns + execution_ns;
  }
};

struct AppConfig {
  std::vector<std::string> args;
  /// Guest heap reservation charged against the secure heap (the paper's
  /// compile-time TA heap size; e.g. 12 MB for PolyBench, 25 MB for SQLite).
  std::size_t heap_bytes = 2 * 1024 * 1024;
  wasm::ExecMode mode = wasm::ExecMode::Aot;
};

/// Native-codegen tiering knobs (effective only where jit::jit_available():
/// x86-64 hosts with WATZ_DISABLE_JIT unset; everywhere else execution
/// falls back to the AOT stream wholesale).
struct JitTierOptions {
  bool enabled = true;
  /// Per-function call count before background compilation is queued.
  std::uint32_t hot_threshold = 64;
};

/// The cacheable product of the expensive launch phases: measured bytecode
/// in executable secure pages plus its decoded + validated + AOT-translated
/// form. Immutable once built; instantiation copies out of it, so one
/// PreparedModule serves any number of concurrent LoadedApps.
class PreparedModule {
 public:
  const crypto::Sha256Digest& measurement() const noexcept { return measurement_; }
  const wasm::Module& module() const noexcept { return module_; }
  const std::vector<wasm::CompiledFunc>& compiled() const noexcept { return compiled_; }
  wasm::ExecMode mode() const noexcept { return mode_; }
  /// Secure-heap footprint of the retained executable pages (what a module
  /// cache charges against its budget).
  std::size_t code_bytes() const noexcept { return code_memory_.size(); }
  /// Cost of the cold phases (Transition + Memory allocation + Hashing +
  /// Loading) paid when this module was prepared.
  const StartupBreakdown& load_cost() const noexcept { return load_cost_; }
  /// Native-codegen tiering state shared by every instance of this module
  /// (heat counters, compile queue, installed entries). Null when tiering
  /// is off, the mode is not Aot, or the host cannot run the JIT. The
  /// per-function entry installs are the only mutation; they are atomic
  /// and publication-safe, so this does not break module immutability for
  /// concurrent instances.
  const std::shared_ptr<wasm::jit::TierSet>& tier() const noexcept { return tier_; }

 private:
  friend class WatzRuntime;
  crypto::Sha256Digest measurement_{};
  wasm::Module module_;
  std::vector<wasm::CompiledFunc> compiled_;
  wasm::ExecMode mode_ = wasm::ExecMode::Aot;
  optee::SecureAlloc code_memory_;  // executable pages holding the bytecode
  StartupBreakdown load_cost_{};
  std::shared_ptr<wasm::jit::TierSet> tier_;
};

/// One sandboxed Wasm application loaded in the secure world.
///
/// Threading: an app is bound at instantiation to ONE secure monitor (a CPU
/// context of the SoC) and must only ever be driven from the thread that
/// owns that monitor. Apps bound to different monitors of the same device
/// invoke concurrently — that is the sandbox-pool execution model; see
/// core::SandboxSlot.
class LoadedApp {
 public:
  const crypto::Sha256Digest& measurement() const noexcept {
    return prepared_->measurement();
  }
  const StartupBreakdown& startup() const noexcept { return startup_; }
  wasm::Instance& instance() noexcept { return *instance_; }
  wasi::WasiEnv& wasi() noexcept { return *wasi_env_; }
  WasiRaEnv& wasi_ra() noexcept { return *wasi_ra_env_; }
  /// The shared prepared form this app was instantiated from.
  const std::shared_ptr<const PreparedModule>& prepared() const noexcept {
    return prepared_;
  }
  /// Secure-heap charge of the guest heap reservation (pool accounting).
  std::size_t heap_bytes() const noexcept { return heap_memory_.size(); }
  /// The secure monitor this app is bound to (identifies the sandbox slot
  /// that may drive it; pool handouts match on it).
  tz::SecureMonitor* monitor() const noexcept { return monitor_; }

  /// Invokes an exported function inside the sandbox, crossing the world
  /// boundary (charged by the monitor).
  Result<std::vector<wasm::Value>> invoke(const std::string& entry,
                                          std::span<const wasm::Value> args);

 private:
  friend class WatzRuntime;
  StartupBreakdown startup_{};
  std::shared_ptr<const PreparedModule> prepared_;
  optee::SecureAlloc heap_memory_;  // guest heap reservation
  /// Per-app RNG stream (WASI random_get etc.). Owned by the app so
  /// concurrent guests on different slots never contend on — or race —
  /// one shared generator.
  std::unique_ptr<crypto::Fortuna> rng_;
  std::unique_ptr<wasi::WasiEnv> wasi_env_;
  std::unique_ptr<WasiRaEnv> wasi_ra_env_;
  std::unique_ptr<wasm::ImportResolver> imports_;
  std::unique_ptr<wasm::Instance> instance_;
  tz::SecureMonitor* monitor_ = nullptr;
};

/// Threading: the runtime itself is thread-safe — prepare() serialises the
/// shared-memory staging on an internal mutex, counters are atomic, and
/// every LoadedApp gets its own RNG stream. What stays single-threaded is
/// each secure monitor: pass a distinct `monitor` (a core::SandboxSlot's)
/// to prepare()/instantiate() from each concurrent caller; callers that
/// pass none share the device's primary monitor and must serialise
/// themselves (gateway: core::DeviceControl's TEE mutex).
class WatzRuntime {
 public:
  WatzRuntime(optee::TrustedOs& os, tz::SecureMonitor& monitor,
              const attestation::AttestationService& attestation_service);

  /// Cold half of the pipeline: stages the binary through the shared
  /// buffer, copies it into executable secure pages, measures it and runs
  /// decode + validate (+ AOT translation). The result is immutable and
  /// shareable across launches. `monitor` is the secure-world entry point
  /// to charge (nullptr = the device's primary monitor).
  Result<std::shared_ptr<const PreparedModule>> prepare(
      ByteView wasm_binary, wasm::ExecMode mode = wasm::ExecMode::Aot,
      tz::SecureMonitor* monitor = nullptr);

  /// Warm half: allocates the guest heap, builds the runtime environment
  /// and instantiates the module. Only Transition + Memory allocation +
  /// Initialisation + Instantiate appear in the resulting startup()
  /// breakdown -- the Loading phase was paid once, in prepare(). The app
  /// is bound to `monitor` (nullptr = the device's primary monitor): every
  /// later invoke crosses that monitor, so apps instantiated on different
  /// sandbox-slot monitors execute concurrently.
  Result<std::unique_ptr<LoadedApp>> instantiate(
      std::shared_ptr<const PreparedModule> prepared, AppConfig config,
      tz::SecureMonitor* monitor = nullptr);

  /// Launches a Wasm application from a normal-world binary. The full
  /// paper flow: shared buffer -> secure copy -> measure -> load -> run
  /// until the first instruction (the start/_start entry is NOT invoked;
  /// call LoadedApp::invoke for that). Equivalent to prepare() +
  /// instantiate() with the phase costs merged.
  Result<std::unique_ptr<LoadedApp>> launch(ByteView wasm_binary, AppConfig config);

  /// The device's primary monitor: what prepare()/instantiate() bind to
  /// when no slot monitor is passed (single-threaded / control-plane use).
  tz::SecureMonitor& primary_monitor() noexcept { return monitor_; }

  /// Tiering knobs for modules prepared AFTER this call (a TierSet is
  /// built per PreparedModule at prepare() time).
  void set_jit_options(JitTierOptions options) noexcept { jit_options_ = options; }
  const JitTierOptions& jit_options() const noexcept { return jit_options_; }

  std::uint64_t apps_launched() const noexcept {
    return apps_launched_.load(std::memory_order_relaxed);
  }
  std::uint64_t modules_prepared() const noexcept {
    return modules_prepared_.load(std::memory_order_relaxed);
  }

 private:
  /// Derives a fresh per-app RNG seed from the runtime stream (serialised:
  /// Fortuna is not thread-safe and instantiates race across slots).
  Bytes next_app_seed();

  optee::TrustedOs& os_;
  tz::SecureMonitor& monitor_;
  const attestation::AttestationService& attestation_;
  std::mutex rng_mu_;  // guards app_rng_ (seed derivation only)
  crypto::Fortuna app_rng_;
  /// Serialises the shared-memory staging of prepare(): the world-shared
  /// buffer is one physical region per device, not per slot.
  std::mutex prepare_mu_;
  JitTierOptions jit_options_{};
  std::atomic<std::uint64_t> apps_launched_{0};
  std::atomic<std::uint64_t> modules_prepared_{0};
};

}  // namespace watz::core
