#include "core/wasi_ra.hpp"

#include <cstring>

namespace watz::core {

namespace {

using wasm::Instance;
using wasm::Value;
using wasm::ValType;

wasm::FuncType sig(std::initializer_list<ValType> params,
                   std::initializer_list<ValType> results) {
  return wasm::FuncType{params, results};
}

Result<std::vector<Value>> ret_i32(std::int32_t v) {
  return std::vector<Value>{Value::from_i32(v)};
}

}  // namespace

class WasiRaShims {
 public:
  static void register_all(WasiRaEnv& env, wasm::ImportResolver& imports) {
    const std::string kModule = "wasi_ra";
    auto add = [&](const char* name, wasm::FuncType type, wasm::HostFn fn) {
      imports.add_function(kModule, name, std::move(type), std::move(fn));
    };

    // quote_handle = collect_quote(anchor_ptr): issues evidence for this
    // application's measured claim, bound to the caller-provided anchor.
    add("wasi_ra_collect_quote", sig({ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          wasm::Memory* mem = inst.memory();
          const std::uint32_t ptr = a[0].u32();
          if (mem == nullptr || !mem->in_bounds(ptr, 32)) return ret_i32(-1);
          std::array<std::uint8_t, 32> anchor;
          std::memcpy(anchor.data(), mem->data() + ptr, 32);
          const std::int32_t handle = env.next_handle_++;
          env.quotes_.emplace(handle, env.service_.issue_evidence(anchor, env.claim_));
          return ret_i32(handle);
        });

    add("wasi_ra_dispose_quote", sig({ValType::I32}, {ValType::I32}),
        [&env](Instance&, std::span<const Value> a) -> Result<std::vector<Value>> {
          return ret_i32(env.quotes_.erase(a[0].i32()) == 1 ? 0 : -1);
        });

    // ctx = net_handshake(host_ptr, host_len, port, identity_ptr, anchor_out):
    // connects through the supplicant, performs msg0/msg1, writes the anchor.
    add("wasi_ra_net_handshake",
        sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32},
            {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          wasm::Memory* mem = inst.memory();
          const std::uint32_t host_ptr = a[0].u32(), host_len = a[1].u32();
          const std::uint16_t port = static_cast<std::uint16_t>(a[2].u32());
          const std::uint32_t id_ptr = a[3].u32(), anchor_out = a[4].u32();
          if (mem == nullptr || !mem->in_bounds(host_ptr, host_len) ||
              !mem->in_bounds(id_ptr, 65) || !mem->in_bounds(anchor_out, 32))
            return ret_i32(-1);

          // The verifier identity is read from the application image: its
          // bytes are part of the code measurement, which is what lets the
          // verifier detect a swapped key (SS IV, requirement 2).
          auto identity = crypto::EcPoint::decode_uncompressed(
              ByteView(mem->data() + id_ptr, 65));
          if (!identity.ok()) return ret_i32(-2);

          const std::string host(reinterpret_cast<const char*>(mem->data() + host_ptr),
                                 host_len);
          auto socket = env.supplicant_.socket_connect(host, port);
          if (!socket.ok()) return ret_i32(-3);

          WasiRaEnv::RaContext ctx;
          ctx.session = std::make_unique<ra::AttesterSession>(env.rng_, *identity);
          ctx.socket = *socket;
          auto msg1 = env.supplicant_.socket_send_recv(ctx.socket, ctx.session->make_msg0());
          if (!msg1.ok()) {
            env.supplicant_.socket_close(ctx.socket);
            return ret_i32(-4);
          }
          const Status processed = ctx.session->process_msg1(*msg1);
          if (!processed.ok()) {
            env.supplicant_.socket_close(ctx.socket);
            return ret_i32(-5);
          }
          // The anchor is session-bound and returned to the guest so it can
          // collect a quote against it (paper: "an anchor [is] returned in
          // opaque values; the latter is used to generate evidence").
          std::memcpy(mem->data() + anchor_out, ctx.session->anchor().data(), 32);

          const std::int32_t handle = env.next_handle_++;
          env.contexts_.emplace(handle, std::move(ctx));
          return ret_i32(handle);
        });

    add("wasi_ra_net_send_quote", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance&, std::span<const Value> a) -> Result<std::vector<Value>> {
          const auto ctx_it = env.contexts_.find(a[0].i32());
          if (ctx_it == env.contexts_.end()) return ret_i32(-1);
          const auto quote_it = env.quotes_.find(a[1].i32());
          if (quote_it == env.quotes_.end()) return ret_i32(-5);
          WasiRaEnv::RaContext& ctx = ctx_it->second;
          auto msg2 = ctx.session->make_msg2(quote_it->second);
          if (!msg2.ok()) return ret_i32(-2);
          auto msg3 = env.supplicant_.socket_send_recv(ctx.socket, *msg2);
          if (!msg3.ok()) return ret_i32(-3);
          auto secret = ctx.session->handle_msg3(*msg3);
          if (!secret.ok()) return ret_i32(-4);
          ctx.secret = std::move(*secret);
          ctx.have_secret = true;
          return ret_i32(0);
        });

    add("wasi_ra_net_data_size", sig({ValType::I32}, {ValType::I32}),
        [&env](Instance&, std::span<const Value> a) -> Result<std::vector<Value>> {
          const auto ctx_it = env.contexts_.find(a[0].i32());
          if (ctx_it == env.contexts_.end() || !ctx_it->second.have_secret)
            return ret_i32(-1);
          return ret_i32(static_cast<std::int32_t>(ctx_it->second.secret.size()));
        });

    add("wasi_ra_net_receive_data",
        sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          const auto ctx_it = env.contexts_.find(a[0].i32());
          if (ctx_it == env.contexts_.end() || !ctx_it->second.have_secret)
            return ret_i32(-1);
          wasm::Memory* mem = inst.memory();
          const std::uint32_t buf = a[1].u32(), len = a[2].u32(), nread_ptr = a[3].u32();
          if (mem == nullptr || !mem->in_bounds(buf, len) || !mem->in_bounds(nread_ptr, 4))
            return ret_i32(-2);
          const Bytes& secret = ctx_it->second.secret;
          const std::uint32_t take =
              std::min<std::uint32_t>(len, static_cast<std::uint32_t>(secret.size()));
          std::memcpy(mem->data() + buf, secret.data(), take);
          for (int i = 0; i < 4; ++i)
            mem->data()[nread_ptr + i] = static_cast<std::uint8_t>(take >> (8 * i));
          return ret_i32(0);
        });

    add("wasi_ra_net_dispose", sig({ValType::I32}, {ValType::I32}),
        [&env](Instance&, std::span<const Value> a) -> Result<std::vector<Value>> {
          const auto ctx_it = env.contexts_.find(a[0].i32());
          if (ctx_it == env.contexts_.end()) return ret_i32(-1);
          env.supplicant_.socket_close(ctx_it->second.socket);
          env.contexts_.erase(ctx_it);
          return ret_i32(0);
        });
  }
};

void WasiRaEnv::register_imports(wasm::ImportResolver& imports) {
  WasiRaShims::register_all(*this, imports);
}

}  // namespace watz::core
