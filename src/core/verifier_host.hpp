// The verifier deployment (Fig 2, right side): a normal-world listener
// forwarding protocol messages to the verifier TA in the secure world.
//
// The GP sockets API cannot accept incoming connections (SS V), so the
// listener lives in the normal world and each received message crosses the
// boundary into the verifier TA via the secure monitor.
#pragma once

#include <memory>

#include "core/device.hpp"
#include "ra/verifier.hpp"

namespace watz::core {

class VerifierHost {
 public:
  /// Creates the verifier TA on `device`, with a long-term identity derived
  /// from the device's root of trust.
  VerifierHost(Device& device, crypto::Rng& rng);

  ra::Verifier& verifier() noexcept { return *verifier_; }
  const crypto::EcPoint& identity() const noexcept { return verifier_->identity_key(); }

  /// Binds the normal-world listener on the device's hostname.
  Status listen(std::uint16_t port);

 private:
  Device& device_;
  std::unique_ptr<ra::Verifier> verifier_;
};

}  // namespace watz::core
