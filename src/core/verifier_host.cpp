#include "core/verifier_host.hpp"

#include "crypto/fortuna.hpp"

namespace watz::core {

namespace {
crypto::KeyPair derive_identity(Device& device) {
  crypto::Fortuna rng(device.os().huk_subkey_derive("watz-verifier-identity-v1"));
  return crypto::ecdsa_keygen(rng);
}
}  // namespace

VerifierHost::VerifierHost(Device& device, crypto::Rng& rng)
    : device_(device),
      verifier_(std::make_unique<ra::Verifier>(derive_identity(device), rng)) {}

Status VerifierHost::listen(std::uint16_t port) {
  // Each message is handled inside the TEE: the listener only shuttles
  // buffers, so every request pays the world-switch cost (SS VI-A).
  return device_.fabric().listen(
      device_.hostname(), port,
      [this](std::uint64_t conn, ByteView message) -> Result<Bytes> {
        return device_.monitor().smc_call(
            [&]() -> Result<Bytes> { return verifier_->handle(conn, message); });
      },
      [this](std::uint64_t conn) {
        device_.monitor().smc_call([&] {
          verifier_->end_session(conn);
          return 0;
        });
      });
}

}  // namespace watz::core
