#include "core/device.hpp"

#include "crypto/fortuna.hpp"
#include "hw/clock.hpp"

namespace watz::core {

namespace {

/// The TEE supplicant daemon: services secure-world RPCs from the normal
/// world (SS V). Sockets go through the fabric; each RPC pays the
/// supplicant round-trip cost from the latency model.
class DeviceSupplicant final : public optee::Supplicant {
 public:
  DeviceSupplicant(net::Fabric& fabric, hw::LatencyModel latency)
      : fabric_(fabric), latency_(std::move(latency)) {}

  std::uint64_t monotonic_time_ns() override { return hw::monotonic_ns(); }

  Result<std::uint32_t> socket_connect(const std::string& host,
                                       std::uint16_t port) override {
    latency_.charge_supplicant_rpc();
    auto conn = fabric_.connect(host, port);
    if (!conn.ok()) return Result<std::uint32_t>::err(conn.error());
    return static_cast<std::uint32_t>(*conn);
  }

  Result<Bytes> socket_send_recv(std::uint32_t handle, ByteView message) override {
    latency_.charge_supplicant_rpc();
    return fabric_.send_recv(handle, message);
  }

  void socket_close(std::uint32_t handle) override {
    latency_.charge_supplicant_rpc();
    fabric_.close(handle);
  }

 private:
  net::Fabric& fabric_;
  hw::LatencyModel latency_;
};

}  // namespace

Vendor Vendor::create(ByteView seed) {
  crypto::Fortuna rng(seed);
  return Vendor{crypto::ecdsa_keygen(rng)};
}

std::vector<tz::BootImage> Vendor::make_boot_chain() const {
  std::vector<tz::BootImage> chain = {
      {"spl", to_bytes("WaTZ SPL (second-stage bootloader)"), {}},
      {"u-boot+atf", to_bytes("U-Boot 2020.10-rc2 + Arm Trusted Firmware 2.3"), {}},
      {"optee-os", to_bytes("OP-TEE 3.13 + WaTZ kernel extensions"), {}},
  };
  for (auto& image : chain) tz::sign_image(image, key.priv);
  return chain;
}

Result<std::unique_ptr<Device>> Device::boot(net::Fabric& fabric, const Vendor& vendor,
                                             DeviceConfig config) {
  auto device = std::unique_ptr<Device>(new Device(fabric, std::move(config)));

  // Manufacturing: burn the vendor verification key hash into the eFuses.
  const auto key_digest = crypto::sha256(vendor.key.pub.encode_uncompressed());
  const Status burned = device->fuses_.program_digest(key_digest);
  if (!burned.ok()) return Result<std::unique_ptr<Device>>::err(burned.error());

  // Secure boot into OP-TEE.
  const hw::LatencyModel latency{device->config_.latency};
  auto os = optee::TrustedOs::boot(device->caam_, device->fuses_, vendor.key.pub,
                                   vendor.make_boot_chain(), latency,
                                   device->config_.os);
  if (!os.ok()) return Result<std::unique_ptr<Device>>::err(os.error());
  device->os_ = std::move(*os);

  // WaTZ attestation service as a kernel module.
  auto service = attestation::AttestationService::create(*device->os_);
  if (!service.ok()) return Result<std::unique_ptr<Device>>::err(service.error());
  device->attestation_ = *service;
  device->os_->register_module(device->attestation_);

  // Normal-world supplicant.
  device->supplicant_ = std::make_unique<DeviceSupplicant>(fabric, latency);
  device->os_->attach_supplicant(device->supplicant_.get());

  // The WaTZ runtime TA.
  device->runtime_ = std::make_unique<WatzRuntime>(*device->os_, device->monitor_,
                                                   *device->attestation_);
  return device;
}

}  // namespace watz::core
