// A complete simulated board: the assembly the prototype runs on.
//
// Mirrors Fig 1/Fig 2: SoC (eFuses + CAAM + TrustZone) -> secure boot ->
// OP-TEE with the WaTZ extensions + attestation service kernel module ->
// WaTZ runtime TA in the secure world, TEE supplicant in the normal world
// bridging sockets and the monotonic clock.
//
// Threading contract: a bare Device is an ACTOR — its primary secure
// monitor (world-state, enter/leave counters) is not locked, so every TEE
// entry through it must come from one thread at a time. Multi-threaded
// users wrap the device in a DeviceControl: a mutex-guarded control-plane
// facade (RA handshakes, boot bookkeeping, secure-heap accounting) plus a
// pool of SandboxSlots, each owning its OWN SecureMonitor (modelling one
// CPU context of the SoC), so N slots run guest invokes concurrently
// while control-plane entries serialise on the facade. Cross-thread reads
// outside that structure are limited to the few counters explicitly made
// atomic (e.g. TrustedOs::heap_in_use).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "net/fabric.hpp"

namespace watz::core {

/// The software vendor: signs boot images and TAs. One per deployment.
struct Vendor {
  crypto::KeyPair key;

  static Vendor create(ByteView seed);
  std::vector<tz::BootImage> make_boot_chain() const;
};

struct DeviceConfig {
  std::string hostname = "device";
  /// Device-unique OTPMK; fixed value => same device identity across
  /// simulated power cycles.
  std::array<std::uint8_t, 32> otpmk{};
  hw::LatencyConfig latency{};
  optee::TrustedOsConfig os{};
};

class Device {
 public:
  /// Manufactures + boots a device: burns the vendor key hash into eFuses,
  /// runs the secure boot chain, starts OP-TEE, loads the attestation
  /// service and wires the supplicant to the network fabric.
  static Result<std::unique_ptr<Device>> boot(net::Fabric& fabric, const Vendor& vendor,
                                              DeviceConfig config);

  const std::string& hostname() const noexcept { return config_.hostname; }
  optee::TrustedOs& os() noexcept { return *os_; }
  tz::SecureMonitor& monitor() noexcept { return monitor_; }
  WatzRuntime& runtime() noexcept { return *runtime_; }
  const attestation::AttestationService& attestation_service() const noexcept {
    return *attestation_;
  }
  net::Fabric& fabric() noexcept { return fabric_; }
  optee::Supplicant& supplicant() noexcept { return *supplicant_; }

 private:
  Device(net::Fabric& fabric, DeviceConfig config)
      : fabric_(fabric),
        config_(std::move(config)),
        caam_(config_.otpmk),
        monitor_(hw::LatencyModel(config_.latency)) {}

  net::Fabric& fabric_;
  DeviceConfig config_;
  hw::EfuseBank fuses_;
  hw::Caam caam_;
  tz::SecureMonitor monitor_;
  std::unique_ptr<optee::TrustedOs> os_;
  std::shared_ptr<attestation::AttestationService> attestation_;
  std::unique_ptr<optee::Supplicant> supplicant_;
  std::unique_ptr<WatzRuntime> runtime_;
};

/// One reentrant sandbox execution context on a device: models a CPU
/// context of the SoC with its own security state, so its SecureMonitor is
/// independent of the device's primary monitor and of every sibling slot.
/// A slot is owned by exactly one worker thread at a time; apps
/// instantiated on its monitor (WatzRuntime::instantiate with
/// slot.monitor()) are bound to the slot and invoke concurrently with
/// other slots' apps on the same device.
class SandboxSlot {
 public:
  SandboxSlot(std::size_t index, hw::LatencyModel latency)
      : index_(index), monitor_(std::move(latency)) {}
  SandboxSlot(const SandboxSlot&) = delete;
  SandboxSlot& operator=(const SandboxSlot&) = delete;

  std::size_t index() const noexcept { return index_; }
  tz::SecureMonitor& monitor() noexcept { return monitor_; }

 private:
  std::size_t index_;
  tz::SecureMonitor monitor_;
};

/// Thread-safe facade over one Device for multi-threaded executors (the
/// gateway's per-device sandbox pool). Splits the device into:
///
///   * a CONTROL PLANE — RA handshakes, cold prepares on the primary
///     monitor, boot bookkeeping — serialised by tee_mutex() (the primary
///     SecureMonitor is single-threaded state);
///   * a DATA PLANE — `slots()` SandboxSlots, each with its own monitor,
///     entered concurrently by their owning worker threads.
///
/// Secure-heap accounting stays on the device's TrustedOs (atomic,
/// CAS-bounded), shared by every slot — the per-device budget is the one
/// constraint the pool does NOT split.
class DeviceControl {
 public:
  DeviceControl(Device& device, std::size_t slots) : device_(device) {
    const hw::LatencyModel& latency = device.monitor().latency();
    if (slots == 0) slots = 1;
    slots_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i)
      slots_.push_back(std::make_unique<SandboxSlot>(i, latency));
  }
  DeviceControl(const DeviceControl&) = delete;
  DeviceControl& operator=(const DeviceControl&) = delete;

  Device& device() noexcept { return device_; }
  std::size_t slot_count() const noexcept { return slots_.size(); }
  SandboxSlot& slot(std::size_t index) noexcept { return *slots_[index]; }

  /// Serialises control-plane TEE entry (the primary monitor): hold it
  /// across every Device::monitor() smc_call — RA attester runs, direct
  /// runtime launches — made while slot workers are live. Leaf lock: never
  /// acquire anything under it.
  std::mutex& tee_mutex() noexcept { return tee_mu_; }

  std::size_t secure_heap_in_use() const noexcept {
    return device_.os().heap_in_use();
  }

 private:
  Device& device_;
  std::mutex tee_mu_;
  std::vector<std::unique_ptr<SandboxSlot>> slots_;
};

}  // namespace watz::core
