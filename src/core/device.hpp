// A complete simulated board: the assembly the prototype runs on.
//
// Mirrors Fig 1/Fig 2: SoC (eFuses + CAAM + TrustZone) -> secure boot ->
// OP-TEE with the WaTZ extensions + attestation service kernel module ->
// WaTZ runtime TA in the secure world, TEE supplicant in the normal world
// bridging sockets and the monotonic clock.
//
// Threading contract: a Device is an ACTOR. Its mutable state (secure
// monitor world-state, runtime, trusted-OS heap bookkeeping) is not
// locked; instead every TEE entry — launches, invokes, RA handshakes —
// must happen on the one thread that owns the device (in the gateway:
// the backend's worker thread). Cross-thread reads are limited to the
// few counters explicitly made atomic (e.g. TrustedOs::heap_in_use).
#pragma once

#include <memory>
#include <string>

#include "core/runtime.hpp"
#include "net/fabric.hpp"

namespace watz::core {

/// The software vendor: signs boot images and TAs. One per deployment.
struct Vendor {
  crypto::KeyPair key;

  static Vendor create(ByteView seed);
  std::vector<tz::BootImage> make_boot_chain() const;
};

struct DeviceConfig {
  std::string hostname = "device";
  /// Device-unique OTPMK; fixed value => same device identity across
  /// simulated power cycles.
  std::array<std::uint8_t, 32> otpmk{};
  hw::LatencyConfig latency{};
  optee::TrustedOsConfig os{};
};

class Device {
 public:
  /// Manufactures + boots a device: burns the vendor key hash into eFuses,
  /// runs the secure boot chain, starts OP-TEE, loads the attestation
  /// service and wires the supplicant to the network fabric.
  static Result<std::unique_ptr<Device>> boot(net::Fabric& fabric, const Vendor& vendor,
                                              DeviceConfig config);

  const std::string& hostname() const noexcept { return config_.hostname; }
  optee::TrustedOs& os() noexcept { return *os_; }
  tz::SecureMonitor& monitor() noexcept { return monitor_; }
  WatzRuntime& runtime() noexcept { return *runtime_; }
  const attestation::AttestationService& attestation_service() const noexcept {
    return *attestation_;
  }
  net::Fabric& fabric() noexcept { return fabric_; }
  optee::Supplicant& supplicant() noexcept { return *supplicant_; }

 private:
  Device(net::Fabric& fabric, DeviceConfig config)
      : fabric_(fabric),
        config_(std::move(config)),
        caam_(config_.otpmk),
        monitor_(hw::LatencyModel(config_.latency)) {}

  net::Fabric& fabric_;
  DeviceConfig config_;
  hw::EfuseBank fuses_;
  hw::Caam caam_;
  tz::SecureMonitor monitor_;
  std::unique_ptr<optee::TrustedOs> os_;
  std::shared_ptr<attestation::AttestationService> attestation_;
  std::unique_ptr<optee::Supplicant> supplicant_;
  std::unique_ptr<WatzRuntime> runtime_;
};

}  // namespace watz::core
