// WASI-RA: the paper's WASI extension for remote attestation (SS V).
//
// Exposed to guest applications under the import module "wasi_ra":
//
//   evidence generation (transport-agnostic):
//     wasi_ra_collect_quote(anchor_ptr) -> quote_handle
//     wasi_ra_dispose_quote(quote_handle) -> errno
//
//   attestation protocol over the runtime's socket path:
//     wasi_ra_net_handshake(host_ptr, host_len, port,
//                           identity_ptr /*65B SEC1*/, anchor_out_ptr) -> ctx
//     wasi_ra_net_send_quote(ctx, quote_handle) -> errno
//     wasi_ra_net_data_size(ctx) -> size of the received secret blob
//     wasi_ra_net_receive_data(ctx, buf_ptr, buf_len, nread_ptr) -> errno
//     wasi_ra_net_dispose(ctx) -> errno
//
// Handles are opaque non-zero i32 values; negative returns signal errors.
#pragma once

#include <map>
#include <memory>

#include "attestation/service.hpp"
#include "crypto/rng.hpp"
#include "optee/trusted_os.hpp"
#include "ra/attester.hpp"
#include "wasm/instance.hpp"

namespace watz::core {

/// Per-application WASI-RA state: the measured claim this app was loaded
/// with, and the live attestation sessions/quotes it created.
class WasiRaEnv {
 public:
  WasiRaEnv(const attestation::AttestationService& service, optee::Supplicant& supplicant,
            crypto::Rng& rng, crypto::Sha256Digest claim)
      : service_(service), supplicant_(supplicant), rng_(rng), claim_(claim) {}

  void register_imports(wasm::ImportResolver& imports);

  const crypto::Sha256Digest& claim() const noexcept { return claim_; }
  std::size_t open_contexts() const noexcept { return contexts_.size(); }
  std::size_t open_quotes() const noexcept { return quotes_.size(); }

 private:
  friend class WasiRaShims;

  struct RaContext {
    std::unique_ptr<ra::AttesterSession> session;
    std::uint32_t socket = 0;
    Bytes secret;       // filled after send_quote (msg3 handled)
    bool have_secret = false;
  };

  const attestation::AttestationService& service_;
  optee::Supplicant& supplicant_;
  crypto::Rng& rng_;
  crypto::Sha256Digest claim_;
  std::map<std::int32_t, attestation::Evidence> quotes_;
  std::map<std::int32_t, RaContext> contexts_;
  std::int32_t next_handle_ = 1;
};

}  // namespace watz::core
