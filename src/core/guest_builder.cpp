#include "core/guest_builder.hpp"

#include "wasm/builder.hpp"

namespace watz::core {

Bytes build_attester_app(const crypto::EcPoint& verifier_identity,
                         const std::string& verifier_host, std::uint16_t port,
                         std::uint32_t memory_pages) {
  using namespace wasm;
  using L = AttesterAppLayout;

  ModuleBuilder b;
  const FuncType i32_to_i32{{ValType::I32}, {ValType::I32}};
  const auto collect =
      b.import_function("wasi_ra", "wasi_ra_collect_quote", i32_to_i32);
  const auto dispose_quote =
      b.import_function("wasi_ra", "wasi_ra_dispose_quote", i32_to_i32);
  const auto handshake = b.import_function(
      "wasi_ra", "wasi_ra_net_handshake",
      {{ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32},
       {ValType::I32}});
  const auto send_quote = b.import_function(
      "wasi_ra", "wasi_ra_net_send_quote", {{ValType::I32, ValType::I32}, {ValType::I32}});
  const auto data_size =
      b.import_function("wasi_ra", "wasi_ra_net_data_size", i32_to_i32);
  const auto receive = b.import_function(
      "wasi_ra", "wasi_ra_net_receive_data",
      {{ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}});
  const auto net_dispose =
      b.import_function("wasi_ra", "wasi_ra_net_dispose", i32_to_i32);

  b.add_memory(memory_pages, memory_pages);
  b.add_data(L::kHostPtr, to_bytes(verifier_host));
  b.add_data(L::kIdentityPtr, verifier_identity.encode_uncompressed());

  // attest() -> i32
  // locals: 0=ctx, 1=quote, 2=size
  const auto attest =
      b.add_function({{}, {ValType::I32}}, {ValType::I32, ValType::I32, ValType::I32});
  {
    CodeEmitter e;
    // ctx = handshake(host, host_len, port, identity, anchor_out)
    e.i32_const(static_cast<std::int32_t>(L::kHostPtr));
    e.i32_const(static_cast<std::int32_t>(verifier_host.size()));
    e.i32_const(port);
    e.i32_const(static_cast<std::int32_t>(L::kIdentityPtr));
    e.i32_const(static_cast<std::int32_t>(L::kAnchorPtr));
    e.call(handshake).local_tee(0);
    // if (ctx < 0) return ctx
    e.i32_const(0).op(kI32LtS);
    e.if_();
    e.local_get(0).op(kReturn);
    e.end();
    // quote = collect_quote(anchor)
    e.i32_const(static_cast<std::int32_t>(L::kAnchorPtr)).call(collect).local_set(1);
    // if (send_quote(ctx, quote) < 0) return -100
    e.local_get(0).local_get(1).call(send_quote);
    e.i32_const(0).op(kI32LtS);
    e.if_();
    e.i32_const(-100).op(kReturn);
    e.end();
    // size = data_size(ctx)
    e.local_get(0).call(data_size).local_set(2);
    // receive_data(ctx, kSecretPtr, size, kNReadPtr)
    e.local_get(0);
    e.i32_const(static_cast<std::int32_t>(L::kSecretPtr));
    e.local_get(2);
    e.i32_const(static_cast<std::int32_t>(L::kNReadPtr));
    e.call(receive).op(kDrop);
    // cleanup
    e.local_get(1).call(dispose_quote).op(kDrop);
    e.local_get(0).call(net_dispose).op(kDrop);
    e.local_get(2);
    b.set_body(attest, e.bytes());
  }
  b.export_function("attest", attest);

  // first_secret_byte() -> i32
  const auto peek = b.add_function({{}, {ValType::I32}});
  {
    CodeEmitter e;
    e.i32_const(static_cast<std::int32_t>(L::kSecretPtr)).load(kI32Load8U, 0);
    b.set_body(peek, e.bytes());
  }
  b.export_function("first_secret_byte", peek);

  return b.build();
}

}  // namespace watz::core
