#include "core/runtime.hpp"

#include <cstring>

#include "hw/clock.hpp"
#include "wasm/decoder.hpp"
#include "wasm/validator.hpp"

namespace watz::core {

WatzRuntime::WatzRuntime(optee::TrustedOs& os, tz::SecureMonitor& monitor,
                         const attestation::AttestationService& attestation_service)
    : os_(os), monitor_(monitor), attestation_(attestation_service) {
  // Per-runtime RNG for session keys etc., rooted in the device secret so
  // deterministic device fixtures produce reproducible runs.
  app_rng_.reseed(os.huk_subkey_derive("watz-runtime-rng-v1"));
}

Result<std::vector<wasm::Value>> LoadedApp::invoke(const std::string& entry,
                                                   std::span<const wasm::Value> args) {
  return monitor_->smc_call([&] { return instance_->invoke(entry, args); });
}

Result<std::unique_ptr<LoadedApp>> WatzRuntime::launch(ByteView wasm_binary,
                                                       AppConfig config) {
  using Clock = std::uint64_t;
  auto now = [] { return hw::monotonic_ns(); };

  auto app = std::make_unique<LoadedApp>();
  app->monitor_ = &monitor_;

  // The normal world stages the binary in a world-shared buffer. OP-TEE
  // caps shared buffers (9 MB): oversized binaries fail here, exactly the
  // operational ceiling the paper reports.
  auto shared = os_.shared_memory().allocate(wasm_binary.size());
  if (!shared.ok()) return Result<std::unique_ptr<LoadedApp>>::err(shared.error());
  std::memcpy(shared->data(), wasm_binary.data(), wasm_binary.size());

  const Clock t_request = now();

  Result<Status> result = monitor_.smc_call([&]() -> Result<Status> {
    const Clock t_entered = now();
    app->startup_.transition_ns = t_entered - t_request;

    // Phase: memory allocation. Two buffers, as SS VI-B describes: one
    // (executable) for the AOT bytecode, one for the application heap.
    Clock t0 = now();
    auto code_mem = os_.allocate_executable(wasm_binary.size());
    if (!code_mem.ok()) return Result<Status>::err(code_mem.error());
    app->code_memory_ = std::move(*code_mem);
    auto heap_mem = os_.allocate(config.heap_bytes);
    if (!heap_mem.ok()) return Result<Status>::err(heap_mem.error());
    app->heap_memory_ = std::move(*heap_mem);
    std::memcpy(app->code_memory_.data(), shared->data(), shared->size());
    app->startup_.memory_allocation_ns = now() - t0;

    // Phase: hashing. The measurement that will appear as the claim in
    // every piece of evidence this app requests.
    t0 = now();
    app->measurement_ = crypto::sha256(app->code_memory_.view());
    app->startup_.hashing_ns = now() - t0;

    // Phase: initialisation. Runtime environment + host symbol registration.
    t0 = now();
    app->wasi_env_ = std::make_unique<wasi::WasiEnv>(
        config.args,
        [os = &os_] {
          auto t = os->get_system_time();  // charged supplicant RPC (Fig 3a)
          return t.ok() ? t->nanos : hw::monotonic_ns();
        },
        &app_rng_);
    app->wasi_ra_env_ = std::make_unique<WasiRaEnv>(
        attestation_, *os_.supplicant(), app_rng_, app->measurement_);
    app->imports_ = std::make_unique<wasm::ImportResolver>();
    app->wasi_env_->register_imports(*app->imports_);
    app->wasi_ra_env_->register_imports(*app->imports_);
    app->startup_.initialisation_ns = now() - t0;

    // Phase: loading. Decode + validate + AOT-translate (the dominant cost
    // in Fig 4, ~73%).
    t0 = now();
    auto module = wasm::decode_module(app->code_memory_.view());
    if (!module.ok()) return Result<Status>::err("watz: " + module.error());
    const Status valid = wasm::validate_module(*module);
    if (!valid.ok()) return Result<Status>::err("watz: " + valid.error());
    std::vector<wasm::CompiledFunc> compiled;
    if (config.mode == wasm::ExecMode::Aot) {
      auto pc = wasm::precompile_module(*module);
      if (!pc.ok()) return Result<Status>::err("watz: " + pc.error());
      compiled = std::move(*pc);
    }
    app->startup_.loading_ns = now() - t0;

    // Phase: instantiate. Linking, segment evaluation, start function.
    t0 = now();
    auto instance = wasm::Instance::instantiate(std::move(*module), *app->imports_,
                                                config.mode, std::move(compiled));
    if (!instance.ok()) return Result<Status>::err("watz: " + instance.error());
    app->instance_ = std::move(*instance);
    app->startup_.instantiate_ns = now() - t0;
    return Status{};
  });
  if (!result.ok()) return Result<std::unique_ptr<LoadedApp>>::err(result.error());
  if (!result->ok()) return Result<std::unique_ptr<LoadedApp>>::err(result->error());

  ++apps_launched_;
  return app;
}

}  // namespace watz::core
