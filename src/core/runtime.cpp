#include "core/runtime.hpp"

#include <cstring>

#include "hw/clock.hpp"
#include "wasm/decoder.hpp"
#include "wasm/jit/tier.hpp"
#include "wasm/validator.hpp"

namespace watz::core {

WatzRuntime::WatzRuntime(optee::TrustedOs& os, tz::SecureMonitor& monitor,
                         const attestation::AttestationService& attestation_service)
    : os_(os), monitor_(monitor), attestation_(attestation_service) {
  // Per-runtime RNG for session keys etc., rooted in the device secret so
  // deterministic device fixtures produce reproducible runs.
  app_rng_.reseed(os.huk_subkey_derive("watz-runtime-rng-v1"));
}

Result<std::vector<wasm::Value>> LoadedApp::invoke(const std::string& entry,
                                                   std::span<const wasm::Value> args) {
  return monitor_->smc_call([&] { return instance_->invoke(entry, args); });
}

Bytes WatzRuntime::next_app_seed() {
  std::lock_guard<std::mutex> lock(rng_mu_);
  Bytes seed(32);
  app_rng_.fill(seed);
  return seed;
}

Result<std::shared_ptr<const PreparedModule>> WatzRuntime::prepare(
    ByteView wasm_binary, wasm::ExecMode mode, tz::SecureMonitor* monitor) {
  using Prepared = std::shared_ptr<const PreparedModule>;
  auto now = [] { return hw::monotonic_ns(); };
  tz::SecureMonitor& entry = monitor ? *monitor : monitor_;

  auto prepared = std::make_shared<PreparedModule>();
  prepared->mode_ = mode;

  // The world-shared staging buffer is one physical region per device;
  // concurrent prepares (two slots cold-missing at once) serialise here.
  std::lock_guard<std::mutex> stage_lock(prepare_mu_);

  // The normal world stages the binary in a world-shared buffer. OP-TEE
  // caps shared buffers (9 MB): oversized binaries fail here, exactly the
  // operational ceiling the paper reports.
  auto shared = os_.shared_memory().allocate(wasm_binary.size());
  if (!shared.ok()) return Result<Prepared>::err(shared.error());
  std::memcpy(shared->data(), wasm_binary.data(), wasm_binary.size());

  const std::uint64_t t_request = now();

  Result<Status> result = entry.smc_call([&]() -> Result<Status> {
    prepared->load_cost_.transition_ns = now() - t_request;

    // Phase: memory allocation (code half). The executable pages live as
    // long as the prepared module does -- a module cache pins them.
    std::uint64_t t0 = now();
    auto code_mem = os_.allocate_executable(wasm_binary.size());
    if (!code_mem.ok()) return Result<Status>::err(code_mem.error());
    prepared->code_memory_ = std::move(*code_mem);
    std::memcpy(prepared->code_memory_.data(), shared->data(), shared->size());
    prepared->load_cost_.memory_allocation_ns = now() - t0;

    // Phase: hashing. The measurement that will appear as the claim in
    // every piece of evidence an app of this module requests.
    t0 = now();
    prepared->measurement_ = crypto::sha256(prepared->code_memory_.view());
    prepared->load_cost_.hashing_ns = now() - t0;

    // Phase: loading. Decode + validate + AOT-translate (the dominant cost
    // in Fig 4, ~73%). This is exactly what caching a PreparedModule
    // amortises away.
    t0 = now();
    auto module = wasm::decode_module(prepared->code_memory_.view());
    if (!module.ok()) return Result<Status>::err("watz: " + module.error());
    const Status valid = wasm::validate_module(*module);
    if (!valid.ok()) return Result<Status>::err("watz: " + valid.error());
    prepared->module_ = std::move(*module);
    if (mode == wasm::ExecMode::Aot) {
      auto pc = wasm::precompile_module(prepared->module_);
      if (!pc.ok()) return Result<Status>::err("watz: " + pc.error());
      prepared->compiled_ = std::move(*pc);
      // Native-codegen tier: one TierSet per prepared module, so heat and
      // compiled images are shared by every instance of this measurement
      // (codegen paid once fleet-wide). Non-x86-64 hosts or an explicit
      // WATZ_DISABLE_JIT fall back to the AOT stream wholesale.
      if (jit_options_.enabled && wasm::jit::jit_available() &&
          !prepared->compiled_.empty()) {
        wasm::jit::TierConfig tier_config;
        tier_config.hot_threshold = jit_options_.hot_threshold;
        tier_config.charge_code = [os = &os_](std::size_t n) {
          return os->try_charge_code(n);
        };
        tier_config.release_code = [os = &os_](std::size_t n) {
          os->release_code(n);
        };
        prepared->tier_ = std::make_shared<wasm::jit::TierSet>(
            &prepared->module_,
            std::span<const wasm::CompiledFunc>(prepared->compiled_),
            std::move(tier_config));
      }
    }
    prepared->load_cost_.loading_ns = now() - t0;
    return Status{};
  });
  if (!result.ok()) return Result<Prepared>::err(result.error());
  if (!result->ok()) return Result<Prepared>::err(result->error());

  modules_prepared_.fetch_add(1, std::memory_order_relaxed);
  return Prepared(std::move(prepared));
}

Result<std::unique_ptr<LoadedApp>> WatzRuntime::instantiate(
    std::shared_ptr<const PreparedModule> prepared, AppConfig config,
    tz::SecureMonitor* monitor) {
  using App = std::unique_ptr<LoadedApp>;
  auto now = [] { return hw::monotonic_ns(); };

  if (config.mode != prepared->mode())
    return Result<App>::err(
        "watz: prepared module mode does not match AppConfig.mode");

  auto app = std::make_unique<LoadedApp>();
  app->monitor_ = monitor ? monitor : &monitor_;
  app->prepared_ = std::move(prepared);
  app->rng_ = std::make_unique<crypto::Fortuna>(next_app_seed());

  const std::uint64_t t_request = now();

  Result<Status> result = app->monitor_->smc_call([&]() -> Result<Status> {
    app->startup_.transition_ns = now() - t_request;

    // Phase: memory allocation (heap half; SS VI-B's second buffer).
    std::uint64_t t0 = now();
    auto heap_mem = os_.allocate(config.heap_bytes);
    if (!heap_mem.ok()) return Result<Status>::err(heap_mem.error());
    app->heap_memory_ = std::move(*heap_mem);
    app->startup_.memory_allocation_ns = now() - t0;

    // Phase: initialisation. Runtime environment + host symbol registration.
    t0 = now();
    app->wasi_env_ = std::make_unique<wasi::WasiEnv>(
        config.args,
        [os = &os_] {
          auto t = os->get_system_time();  // charged supplicant RPC (Fig 3a)
          return t.ok() ? t->nanos : hw::monotonic_ns();
        },
        app->rng_.get());
    app->wasi_ra_env_ = std::make_unique<WasiRaEnv>(
        attestation_, *os_.supplicant(), *app->rng_, app->prepared_->measurement());
    app->imports_ = std::make_unique<wasm::ImportResolver>();
    app->wasi_env_->register_imports(*app->imports_);
    app->wasi_ra_env_->register_imports(*app->imports_);
    app->startup_.initialisation_ns = now() - t0;

    // Phase: instantiate. Linking, segment evaluation, start function. The
    // module and its AOT image stay inside the shared prepared form
    // (aliasing pointers keep it alive); only per-instance state is built.
    t0 = now();
    std::shared_ptr<const wasm::Module> module_ptr(app->prepared_,
                                                   &app->prepared_->module());
    std::shared_ptr<const std::vector<wasm::CompiledFunc>> compiled_ptr(
        app->prepared_, &app->prepared_->compiled());
    auto instance = wasm::Instance::instantiate_shared(
        std::move(module_ptr), *app->imports_, app->prepared_->mode(),
        std::move(compiled_ptr), /*already_validated=*/true);
    if (!instance.ok()) return Result<Status>::err("watz: " + instance.error());
    app->instance_ = std::move(*instance);
    // Warm checkouts inherit any native entries already installed for this
    // measurement: the tier travels with the prepared module, not the app.
    app->instance_->tier = app->prepared_->tier_;
    app->startup_.instantiate_ns = now() - t0;
    return Status{};
  });
  if (!result.ok()) return Result<App>::err(result.error());
  if (!result->ok()) return Result<App>::err(result->error());

  apps_launched_.fetch_add(1, std::memory_order_relaxed);
  return app;
}

Result<std::unique_ptr<LoadedApp>> WatzRuntime::launch(ByteView wasm_binary,
                                                       AppConfig config) {
  using App = std::unique_ptr<LoadedApp>;
  // One world crossing for the whole pipeline, exactly like the paper's
  // single-shot launch: prepare() and instantiate() run nested inside this
  // SMC (nested calls don't re-cross), so their own transition slices are
  // ~zero and the outer crossing is the one Fig 4 charges.
  const std::uint64_t t_request = hw::monotonic_ns();
  return monitor_.smc_call([&]() -> Result<App> {
    const std::uint64_t transition_ns = hw::monotonic_ns() - t_request;
    auto prepared = prepare(wasm_binary, config.mode);
    if (!prepared.ok()) return Result<App>::err(prepared.error());
    auto app = instantiate(std::move(*prepared), std::move(config));
    if (!app.ok()) return app;

    // A one-shot launch pays both halves; merge so startup() reads exactly
    // as the paper's Fig 4 single-pipeline breakdown.
    const StartupBreakdown& cold = (*app)->prepared_->load_cost();
    StartupBreakdown& s = (*app)->startup_;
    s.transition_ns += cold.transition_ns + transition_ns;
    s.memory_allocation_ns += cold.memory_allocation_ns;
    s.hashing_ns = cold.hashing_ns;
    s.loading_ns = cold.loading_ns;
    return app;
  });
}

}  // namespace watz::core
