// Fig 6 — Speedtest1-shaped macro-benchmark, normalised against native
// execution in the normal world. Paper: WAMR ~2.1x, native TEE ~1.31x,
// WaTZ ~2.12x; read-heavy experiments average ~2.04x, write-heavy ~2.23x;
// WaTZ ~= WAMR within noise.
//
// Native settings run minisql (the SQLite substitute); the Wasm settings
// run the minikv guest with the same op mixes (DESIGN.md substitution
// table). Dataset scaled to 60% like the paper (--size 60 -> scale 6).
#include "bench/harness.hpp"
#include "db/database.hpp"
#include "db/kv_guest.hpp"
#include "db/speedtest.hpp"

namespace {

using namespace watz;

/// Maps a speedtest experiment to the minikv guest op mix.
struct GuestMix {
  const char* fn;
  int arg;
};

GuestMix guest_mix_for(const db::SpeedtestExperiment& e, int scale) {
  const int base = 40 * scale;
  switch (e.id) {
    case 100: case 110: case 120: case 300: case 500:
      return {"kv_inserts", base * 6};
    case 130: case 140: case 142: case 145: case 230: case 520:
      return {"kv_range", scale * 2};
    case 160: case 161: case 170: case 410: case 510:
      return {"kv_lookups", base * 8};
    case 180: case 190: case 210: case 290: case 990:
      return {"kv_updates", base * 4};
    case 400:
      return {"kv_deletes", base * 4};
    case 240: case 250: case 980:
      return {"kv_range", scale * 3};
    case 260: case 270:
      return {"kv_range", scale * 2};
    case 280: case 310: case 320:
      return {"kv_lookups", base * 6};
    case 150:
      return {"kv_inserts", base * 2};
    default:
      return {"kv_lookups", base};
  }
}

}  // namespace

int main() {
  const int kScale = 6;  // paper: --size 60 (60% of the default dataset)

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fig6-vendor"));
  auto device = bench::boot_device(fabric, vendor, "board", 0x61);

  std::printf("=== Fig 6: Speedtest1 (minisql/minikv), normalised (native REE = 1) ===\n");
  std::printf("%4s %-38s %2s | %9s %9s %9s | %10s\n", "id", "description", "rw",
              "nativeTEE", "WasmREE", "WasmTEE", "WaTZ/WAMR");

  // Wasm instances: one REE, one in WaTZ; state persists across experiments
  // (like the single database file in speedtest1).
  static const wasm::ImportResolver kNoImports;
  const Bytes guest = db::kv_guest_module();
  auto ree_inst = bench::instantiate_ree(guest, kNoImports);
  core::AppConfig app_config;
  app_config.heap_bytes = 25 << 20;  // paper: 25 MB heap for the SQLite TA
  auto tee_app = device->runtime().launch(guest, app_config);
  tee_app.ok() ? void() : throw Error(tee_app.error());

  const int kRows = 2000 * kScale;
  bench::invoke_i32(*ree_inst, "kv_setup", {wasm::Value::from_i32(kRows)});
  (void)(*tee_app)->invoke("kv_setup",
                           std::vector<wasm::Value>{wasm::Value::from_i32(kRows)});

  // Native databases (one per setting, like one DB file per run).
  db::Database native_ree;
  db::Database native_tee;
  db::speedtest_setup(native_ree, kScale);
  device->monitor().smc_call([&] {
    db::speedtest_setup(native_tee, kScale);
    return 0;
  });

  double read_sum = 0, write_sum = 0, watz_sum = 0, native_tee_sum = 0;
  int read_n = 0, write_n = 0, total_n = 0;

  for (const auto& experiment : db::speedtest_suite()) {
    const std::uint64_t t_native_ree =
        bench::time_ns([&] { experiment.run(native_ree, kScale); });
    const std::uint64_t t_native_tee = bench::time_ns([&] {
      device->monitor().smc_call([&] {
        experiment.run(native_tee, kScale);
        return 0;
      });
    });

    const GuestMix mix = guest_mix_for(experiment, kScale);
    const std::vector<wasm::Value> arg = {wasm::Value::from_i32(mix.arg)};
    const std::uint64_t t_wasm_ree =
        bench::time_ns([&] { (void)ree_inst->invoke(mix.fn, arg); });
    const std::uint64_t t_wasm_tee =
        bench::time_ns([&] { (void)(*tee_app)->invoke(mix.fn, arg); });

    const double base = static_cast<double>(t_native_ree);
    const double r_tee = t_native_tee / base;
    const double r_wamr = t_wasm_ree / base;
    const double r_watz = t_wasm_tee / base;
    std::printf("%4d %-38s %2s | %8.2fx %8.2fx %8.2fx | %9.4f\n", experiment.id,
                experiment.description.c_str(), experiment.write_heavy ? "W" : "R",
                r_tee, r_wamr, r_watz,
                static_cast<double>(t_wasm_tee) / static_cast<double>(t_wasm_ree));
    (experiment.write_heavy ? write_sum : read_sum) += r_watz;
    (experiment.write_heavy ? write_n : read_n) += 1;
    watz_sum += r_watz;
    native_tee_sum += r_tee;
    ++total_n;
  }

  std::printf("\naverages over %d experiments:\n", total_n);
  std::printf("  native TEE      : %.2fx (paper: 1.31x)\n", native_tee_sum / total_n);
  std::printf("  Wasm TEE (WaTZ) : %.2fx (paper: 2.12x)\n", watz_sum / total_n);
  std::printf("  read-heavy WaTZ : %.2fx (paper: ~2.04x)\n", read_sum / std::max(read_n, 1));
  std::printf("  write-heavy WaTZ: %.2fx (paper: ~2.23x)\n",
              write_sum / std::max(write_n, 1));
  return 0;
}
