// Table III — execution time of msg0/msg1/msg2, split into the paper's
// cost buckets: memory management, key generation, symmetric crypto,
// asymmetric crypto. Paper (Cortex-A53 + LibTomCrypt): key generation
// ~236-471 ms, signatures ~159-238 ms, MACs ~80-90 us, memory ~7-52 us —
// i.e. asymmetric >> symmetric >> memory. Absolute numbers here reflect
// this machine; the *ordering* is the reproduced result.
#include "bench/harness.hpp"
#include "crypto/fortuna.hpp"
#include "ra/attester.hpp"
#include "ra/verifier.hpp"

int main() {
  using namespace watz;
  const int kReps = 21;

  crypto::Fortuna rng(to_bytes("tab3-rng"));
  const crypto::KeyPair verifier_identity = crypto::ecdsa_keygen(rng);
  const crypto::KeyPair device_key = crypto::ecdsa_keygen(rng);
  const auto claim = crypto::sha256(to_bytes("wasm app"));

  // -- primitive buckets -----------------------------------------------------
  const std::uint64_t keygen_ns =
      bench::median_ns(kReps, [&] { (void)crypto::ecdsa_keygen(rng); });

  const auto digest = crypto::sha256(to_bytes("payload"));
  const auto sig = crypto::ecdsa_sign(device_key.priv, digest);
  const std::uint64_t sign_ns =
      bench::median_ns(kReps, [&] { (void)crypto::ecdsa_sign(device_key.priv, digest); });
  const std::uint64_t verify_ns = bench::median_ns(
      kReps, [&] { (void)crypto::ecdsa_verify(device_key.pub, digest, sig); });

  const crypto::KeyPair peer = crypto::ecdsa_keygen(rng);
  const std::uint64_t ecdh_ns = bench::median_ns(
      kReps, [&] { (void)crypto::ecdh_shared_x(device_key.priv, peer.pub); });

  Bytes mac_payload(194, 0x5a);
  crypto::Key128 km{};
  const std::uint64_t mac_ns =
      bench::median_ns(kReps, [&] { (void)crypto::aes_cmac(km, mac_payload); });
  auto shared = crypto::ecdh_shared_x(device_key.priv, peer.pub);
  const std::uint64_t kdf_ns =
      bench::median_ns(kReps, [&] { (void)crypto::derive_session_keys(*shared); });

  const std::uint64_t alloc_ns = bench::median_ns(kReps, [&] {
    Bytes buffer(4096);
    buffer[0] = 1;
  });

  std::printf("=== Table III building blocks (this machine) ===\n");
  std::printf("  ECDHE/ECDSA key generation : %10.1f us\n", bench::us(keygen_ns));
  std::printf("  ECDSA sign                 : %10.1f us\n", bench::us(sign_ns));
  std::printf("  ECDSA verify               : %10.1f us\n", bench::us(verify_ns));
  std::printf("  ECDH shared secret         : %10.1f us\n", bench::us(ecdh_ns));
  std::printf("  AES-CMAC (194 B)           : %10.3f us\n", bench::us(mac_ns));
  std::printf("  KDK + Km/Ke derivation     : %10.3f us\n", bench::us(kdf_ns));
  std::printf("  memory management (4 KiB)  : %10.3f us\n", bench::us(alloc_ns));

  // -- per-message costs -------------------------------------------------------
  auto make_verifier = [&] {
    ra::Verifier v(verifier_identity, rng);
    v.endorse_device(device_key.pub);
    v.add_reference_measurement(claim);
    v.set_secret_provider([](const crypto::Sha256Digest&) { return to_bytes("secret"); });
    return v;
  };
  ra::QuoteFn quote = [&](const std::array<std::uint8_t, 32>& anchor) {
    attestation::Evidence ev;
    ev.anchor = anchor;
    ev.claim = claim;
    ev.attestation_key = device_key.pub;
    ev.signature =
        crypto::ecdsa_sign(device_key.priv, crypto::sha256(ev.signed_payload())).encode();
    return ev;
  };

  const std::uint64_t gen_msg0 = bench::median_ns(kReps, [&] {
    ra::AttesterSession attester(rng, verifier_identity.pub);
    (void)attester.make_msg0();  // key generation dominates
  });

  ra::Verifier verifier = make_verifier();
  ra::AttesterSession attester(rng, verifier_identity.pub);
  const Bytes msg0 = attester.make_msg0();
  const std::uint64_t handle_msg0_gen_msg1 = bench::median_ns(kReps, [&] {
    ra::Verifier v = make_verifier();
    (void)v.handle(1, msg0);  // keygen + ECDH + sign + MAC
  });
  auto msg1 = verifier.handle(1, msg0);
  const std::uint64_t handle_msg1_gen_msg2 = bench::time_ns([&] {
    (void)attester.handle_msg1(*msg1, quote);  // verify + ECDH + quote sign + MAC
  });
  ra::AttesterSession attester2(rng, verifier_identity.pub);
  auto msg1b = verifier.handle(2, attester2.make_msg0());
  auto msg2 = attester2.handle_msg1(*msg1b, quote);
  const std::uint64_t handle_msg2_gen_msg3 = bench::time_ns([&] {
    (void)verifier.handle(2, *msg2);  // MAC + evidence verify + GCM seal
  });

  std::printf("\n=== Table III per-message totals ===\n");
  std::printf("  msg0 generation (attester)          : %10.1f us  [keygen]\n",
              bench::us(gen_msg0));
  std::printf("  msg0 handling + msg1 gen (verifier) : %10.1f us  [keygen+ECDH+sign+MAC]\n",
              bench::us(handle_msg0_gen_msg1));
  std::printf("  msg1 handling + msg2 gen (attester) : %10.1f us  [verify+ECDH+sign+MAC]\n",
              bench::us(handle_msg1_gen_msg2));
  std::printf("  msg2 handling + msg3 gen (verifier) : %10.1f us  [verify+MAC+GCM]\n",
              bench::us(handle_msg2_gen_msg3));

  const double asym = bench::us(sign_ns);
  const double sym = bench::us(mac_ns);
  std::printf("\ninvariant: asymmetric / symmetric cost ratio = %.0fx (paper: ~2774x on "
              "the A53; must be >> 1)\n",
              asym / std::max(sym, 0.001));
  return 0;
}
