// Fig 3 — (a) time-retrieval latency per environment; (b) world-transition
// latencies. Paper values: native TA 10 us, WaTZ 13 us, <1 us in the normal
// world; enter 86 us, leave 20 us.
//
// These two plots validate the boundary *plumbing*: the transition costs
// come from the calibrated LatencyModel (the paper's measured silicon
// numbers), so the measurements here recover the calibration plus the real
// software overhead stacked on top (WASI dispatch for the Wasm case).
#include "bench/harness.hpp"
#include "wasm/builder.hpp"

namespace {

using namespace watz;

/// Guest that calls clock_time_get once per invocation.
Bytes clock_guest() {
  wasm::ModuleBuilder b;
  const auto clock = b.import_function(
      "wasi_snapshot_preview1", "clock_time_get",
      {{wasm::ValType::I32, wasm::ValType::I64, wasm::ValType::I32}, {wasm::ValType::I32}});
  b.add_memory(1);
  const auto f = b.add_function({{}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.i32_const(1).i64_const(1).i32_const(16).call(clock);
  b.set_body(f, e.bytes());
  b.export_function("get_time", f);
  return b.build();
}

}  // namespace

int main() {
  std::printf("=== Fig 3a: time retrieval latency ===\n");
  const int kQueries = 1000;  // paper: 1000 runs per setting

  // Normal world, native: direct clock read.
  {
    const std::uint64_t total = bench::time_ns([&] {
      for (int i = 0; i < kQueries; ++i) {
        volatile std::uint64_t t = hw::monotonic_ns();
        (void)t;
      }
    });
    std::printf("  native REE         : %8.2f us/query (paper: <1 us)\n",
                bench::us(total / kQueries));
  }

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fig3-vendor"));
  auto device = bench::boot_device(fabric, vendor, "board", 0x31);

  // Native trusted application: TEE_GetSystemTime -> supplicant RPC.
  {
    const std::uint64_t total = device->monitor().smc_call([&] {
      return bench::time_ns([&] {
        for (int i = 0; i < kQueries; ++i) {
          auto t = device->os().get_system_time();
          (void)t;
        }
      });
    });
    std::printf("  native TA  (TEE)   : %8.2f us/query (paper: 10 us)\n",
                bench::us(total / kQueries));
  }

  // Wasm in WaTZ: clock_time_get through WASI.
  {
    core::AppConfig config;
    config.heap_bytes = 1 << 20;
    auto app = device->runtime().launch(clock_guest(), config);
    app.ok() ? void() : throw Error(app.error());
    // Keep the world switched once; measure per-call cost inside.
    const std::uint64_t total = device->monitor().smc_call([&] {
      return bench::time_ns([&] {
        for (int i = 0; i < kQueries; ++i)
          (void)(*app)->instance().invoke("get_time", {});
      });
    });
    std::printf("  Wasm in WaTZ (TEE) : %8.2f us/query (paper: 13 us)\n",
                bench::us(total / kQueries));
  }

  std::printf("\n=== Fig 3b: world transition latency ===\n");
  {
    const int kSwitches = 200;
    std::uint64_t inside_ns = 0;
    const std::uint64_t total = bench::time_ns([&] {
      for (int i = 0; i < kSwitches; ++i) {
        device->monitor().smc_call([&] {
          inside_ns += bench::time_ns([] {});
          return 0;
        });
      }
    });
    const double round_trip_us = bench::us((total - inside_ns) / kSwitches);
    const auto& cfg = device->monitor().latency().config();
    std::printf("  enter (calibrated) : %8.2f us (paper: 86 us)\n",
                static_cast<double>(cfg.smc_enter_ns) / 1000.0);
    std::printf("  leave (calibrated) : %8.2f us (paper: 20 us)\n",
                static_cast<double>(cfg.smc_leave_ns) / 1000.0);
    std::printf("  measured round trip: %8.2f us (enter+leave: %.2f us expected)\n",
                round_trip_us,
                static_cast<double>(cfg.smc_enter_ns + cfg.smc_leave_ns) / 1000.0);
    std::printf("  transitions counted: enter=%llu leave=%llu\n",
                static_cast<unsigned long long>(device->monitor().enter_count()),
                static_cast<unsigned long long>(device->monitor().leave_count()));
  }
  return 0;
}
