// Fig 5 — PolyBench/C, normalised against native execution in the normal
// world. Paper: Wasm ~1.34x native on average in BOTH worlds; the WAMR-vs-
// WaTZ difference is <0.02% (TrustZone adds no computation penalty).
//
// Our AOT executor is a register-IR interpreter rather than native codegen,
// so the absolute Wasm/native factor is larger (see EXPERIMENTS.md); the
// invariant under test is WaTZ ~= WAMR and TEE-native ~= REE-native.
#include "bench/harness.hpp"
#include "polybench/suite.hpp"
#include "wcc/compiler.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fig5-vendor"));
  auto device = bench::boot_device(fabric, vendor, "board", 0x51);

  std::printf("=== Fig 5: PolyBench/C, normalised run time (native REE = 1) ===\n");
  std::printf("%6s | %10s %10s %10s | %12s\n", "kernel", "nativeTEE", "WasmREE",
              "WasmTEE", "WaTZ/WAMR");

  static const wasm::ImportResolver kNoImports;
  double sum_wasm_ree = 0;
  double sum_wasm_tee = 0;
  double sum_ratio = 0;
  int count = 0;

  for (const polybench::KernelDef& kernel : polybench::suite()) {
    const int n = kernel.n;
    const int reps = 3;

    // Native, normal world.
    const std::uint64_t native_ree = bench::median_ns(reps, [&] {
      polybench::arena_reset();
      volatile double r = kernel.native(n);
      (void)r;
    });

    // Native, secure world. The TA is invoked once and runs the kernel a
    // few times inside (amortising the SMC crossing, as a real TA batch
    // would); reported per run.
    const int kInner = 8;
    const std::uint64_t native_tee = bench::median_ns(reps, [&] {
      device->monitor().smc_call([&] {
        for (int i = 0; i < kInner; ++i) {
          polybench::arena_reset();
          volatile double r = kernel.native(n);
          (void)r;
        }
        return 0;
      });
    }) / kInner;

    // Wasm, normal world (WAMR baseline).
    wcc::CompileOptions options;
    options.memory_pages = 512;
    auto binary = wcc::compile(kernel.source, options);
    binary.ok() ? void() : throw Error(binary.error());
    auto ree_inst = bench::instantiate_ree(*binary, kNoImports);
    const std::vector<wasm::Value> arg = {wasm::Value::from_i32(n)};
    const std::uint64_t wasm_ree =
        bench::median_ns(reps, [&] { (void)ree_inst->invoke("run", arg); });

    // Wasm, secure world (WaTZ).
    core::AppConfig config;
    config.heap_bytes = 12 << 20;  // paper: 12 MB heap for PolyBench
    auto app = device->runtime().launch(*binary, config);
    app.ok() ? void() : throw Error(app.error());
    const std::uint64_t wasm_tee =
        bench::median_ns(reps, [&] { (void)(*app)->invoke("run", arg); });

    const double base = static_cast<double>(native_ree);
    const double ratio_tee_vs_ree =
        static_cast<double>(wasm_tee) / static_cast<double>(wasm_ree);
    std::printf("%6s | %9.2fx %9.2fx %9.2fx | %11.4f\n", kernel.name,
                native_tee / base, wasm_ree / base, wasm_tee / base, ratio_tee_vs_ree);
    sum_wasm_ree += wasm_ree / base;
    sum_wasm_tee += wasm_tee / base;
    sum_ratio += ratio_tee_vs_ree;
    ++count;
  }

  std::printf("\naverages over %d kernels:\n", count);
  std::printf("  Wasm REE (WAMR) : %.2fx native   (paper: 1.34x)\n", sum_wasm_ree / count);
  std::printf("  Wasm TEE (WaTZ) : %.2fx native   (paper: 1.34x)\n", sum_wasm_tee / count);
  std::printf("  WaTZ vs WAMR    : %.4fx          (paper: <0.02%% apart)\n",
              sum_ratio / count);
  return 0;
}
