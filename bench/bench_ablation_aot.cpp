// Ablation — AOT (pre-translated register IR) vs in-place interpretation.
// The paper reports AOT ~28x faster than interpretation (SS III), which
// motivated extending the OP-TEE kernel with executable-page support.
// Also measures the boundary-crossing amplification for syscall-heavy
// guests (the cost WASI calls pay in the TEE).
#include <benchmark/benchmark.h>

#include "bench/harness.hpp"
#include "polybench/suite.hpp"
#include "wcc/compiler.hpp"

namespace {

using namespace watz;

std::unique_ptr<wasm::Instance> kernel_instance(const char* name, wasm::ExecMode mode) {
  const polybench::KernelDef* kernel = polybench::find_kernel(name);
  kernel != nullptr ? void() : throw Error("no such kernel");
  static const wasm::ImportResolver kNoImports;
  wcc::CompileOptions options;
  options.memory_pages = 512;
  auto binary = wcc::compile(kernel->source, options);
  return bench::instantiate_ree(*binary, kNoImports, mode);
}

void run_kernel(benchmark::State& state, const char* name, wasm::ExecMode mode, int n) {
  auto inst = kernel_instance(name, mode);
  const std::vector<wasm::Value> arg = {wasm::Value::from_i32(n)};
  for (auto _ : state) {
    auto r = inst->invoke("run", arg);
    benchmark::DoNotOptimize(r);
  }
}

void BM_gemm_aot(benchmark::State& state) {
  run_kernel(state, "gem", wasm::ExecMode::Aot, 24);
}
void BM_gemm_interp(benchmark::State& state) {
  run_kernel(state, "gem", wasm::ExecMode::Interp, 24);
}
void BM_jacobi_aot(benchmark::State& state) {
  run_kernel(state, "j1d", wasm::ExecMode::Aot, 400);
}
void BM_jacobi_interp(benchmark::State& state) {
  run_kernel(state, "j1d", wasm::ExecMode::Interp, 400);
}
void BM_floyd_aot(benchmark::State& state) {
  run_kernel(state, "flo", wasm::ExecMode::Aot, 24);
}
void BM_floyd_interp(benchmark::State& state) {
  run_kernel(state, "flo", wasm::ExecMode::Interp, 24);
}

BENCHMARK(BM_gemm_aot)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_gemm_interp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_jacobi_aot)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_jacobi_interp)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_floyd_aot)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_floyd_interp)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Summary: explicit AOT/interp ratio (the paper's 28x claim).
  using namespace watz;
  double ratio_sum = 0;
  int count = 0;
  struct Probe {
    const char* name;
    int n;
  };
  for (const Probe probe : {Probe{"gem", 24}, Probe{"j1d", 400}, Probe{"flo", 24}}) {
    auto aot = kernel_instance(probe.name, wasm::ExecMode::Aot);
    auto interp = kernel_instance(probe.name, wasm::ExecMode::Interp);
    const std::vector<wasm::Value> arg = {wasm::Value::from_i32(probe.n)};
    const std::uint64_t t_aot =
        bench::median_ns(3, [&] { (void)aot->invoke("run", arg); });
    const std::uint64_t t_interp =
        bench::median_ns(3, [&] { (void)interp->invoke("run", arg); });
    const double ratio = static_cast<double>(t_interp) / static_cast<double>(t_aot);
    std::printf("AOT speedup over interpreter, %s: %.1fx\n", probe.name, ratio);
    ratio_sum += ratio;
    ++count;
  }
  std::printf("average AOT speedup: %.1fx (paper: ~28x with WAMR/LLVM)\n",
              ratio_sum / count);
  return 0;
}
