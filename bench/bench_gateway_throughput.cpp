// Gateway throughput: what the service layer amortises.
//
// Phase 1 (launch latency, warm pool disabled so every launch is honest):
//   cold  = first invoke of a ~1 MB module on a device (full pipeline:
//           staging, secure copy, hashing, decode+validate+AOT, link);
//   warm  = same module again (module-cache hit: Transition + heap
//           allocation + Instantiate only).
// The paper's Fig 4 says Loading is ~73% of startup, so warm should be
// several times cheaper -- the acceptance bar is >= 2x.
//
// Phase 2 (session amortisation): every invoke after attach must ride the
// cached evidence -- zero RA message exchanges on the wire.
//
// Phase 3 (sustained throughput, pooling on, 2 devices): invocations/sec
// of a small module dispatched least-loaded across the fleet.
//
// Phase 4 (worker scaling): each enrolled device contributes one gateway
// worker thread, and the fleet's boards charge their world-switch latency
// device-side (sleeping, not busy-waiting a gateway core). Sustained
// invokes/sec is measured at 1, 2, 4 and 8 workers with 2 client threads
// per worker driving the admission layer — the curve shows device count
// converting into real parallelism instead of queueing delay.
//
//   $ ./bench_gateway_throughput [--json]
#include <atomic>
#include <thread>

#include "ann/dataset.hpp"
#include "ann/guest.hpp"
#include "bench/harness.hpp"
#include "gateway/gateway.hpp"
#include "net/chaos_fabric.hpp"
#include "polybench/suite.hpp"
#include "wasm/builder.hpp"
#include "wasm/jit/jit.hpp"
#include "wasm/jit/tier.hpp"
#include "wcc/compiler.hpp"

namespace {

using namespace watz;

/// ~`target_kb` KiB of unrolled arithmetic, exporting entry() -> i64.
Bytes sized_module(int target_kb) {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const int kAddsPerFunc = 6000;
  std::uint32_t first = 0;
  std::size_t emitted = 0;
  int index = 0;
  while (emitted < static_cast<std::size_t>(target_kb) * 1024) {
    wasm::CodeEmitter e;
    e.i64_const(index + 1);
    for (int i = 0; i < kAddsPerFunc; ++i)
      e.i64_const(0x0102030405060708LL + i).op(wasm::kI64Add);
    const auto f = b.add_function({{}, {wasm::ValType::I64}});
    if (index == 0) first = f;
    b.set_body(f, e.bytes());
    emitted += kAddsPerFunc * 11;
    ++index;
  }
  const auto entry = b.add_function({{}, {wasm::ValType::I64}});
  wasm::CodeEmitter e;
  e.call(first);
  b.set_body(entry, e.bytes());
  b.export_function("entry", entry);
  return b.build();
}

/// Small guest for the sustained-throughput phase: add(a, b) -> a + b.
Bytes adder_module() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

gateway::InvokeRequest invoke_request(std::uint64_t session,
                                      const crypto::Sha256Digest& measurement,
                                      std::string entry,
                                      std::vector<wasm::Value> args = {}) {
  gateway::InvokeRequest req;
  req.session_id = session;
  req.measurement = measurement;
  req.entry = std::move(entry);
  req.args = std::move(args);
  req.heap_bytes = 1 << 20;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReport report("gateway_throughput", argc, argv);
  const bool tables = !report.json();

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("gw-bench-vendor"));
  auto node0 = bench::boot_device(fabric, vendor, "node-0", 0x70);
  auto node1 = bench::boot_device(fabric, vendor, "node-1", 0x71);

  // ---- phase 1: cold vs warm launch latency ------------------------------
  gateway::GatewayConfig latency_config;
  latency_config.hostname = "gw-latency";
  latency_config.port = 7000;
  latency_config.ra_port = 7001;
  latency_config.cache.max_pool_per_module = 0;  // every launch instantiates
  gateway::Gateway latency_gw(fabric, latency_config, to_bytes("gw-bench-id-1"));
  latency_gw.start().check();
  latency_gw.add_device(*node0).check();

  gateway::GatewayClient client(fabric);
  client.connect("gw-latency", 7000).check();
  auto attach = client.attach("bench-tenant");
  attach.ok() ? void() : throw Error("bench: " + attach.error());

  const Bytes big = sized_module(1024);
  auto load = client.load_module(attach->session_id, big);
  load.ok() ? void() : throw Error("bench: " + load.error());

  if (tables)
    std::printf("=== Gateway: cold vs warm launch (%.2f MB module) ===\n",
                static_cast<double>(big.size()) / (1024.0 * 1024.0));

  auto cold = client.invoke(invoke_request(attach->session_id, load->measurement, "entry"));
  cold.ok() ? void() : throw Error("bench: " + cold.error());
  if (cold->module_cache_hit) throw Error("bench: first launch unexpectedly warm");

  // Median warm launch over a few repetitions.
  std::vector<std::uint64_t> warm_samples;
  std::uint32_t warm_ra_exchanges = 0;
  for (int i = 0; i < 5; ++i) {
    auto warm = client.invoke(
        invoke_request(attach->session_id, load->measurement, "entry"));
    warm.ok() ? void() : throw Error("bench: " + warm.error());
    if (!warm->module_cache_hit || warm->pool_hit)
      throw Error("bench: expected a pure module-cache hit");
    warm_samples.push_back(warm->launch_ns);
    warm_ra_exchanges += warm->ra_exchanges;
  }
  std::sort(warm_samples.begin(), warm_samples.end());
  const std::uint64_t warm_ns = warm_samples[warm_samples.size() / 2];
  const double speedup =
      static_cast<double>(cold->launch_ns) / static_cast<double>(warm_ns);

  if (tables) {
    std::printf("  cold launch (miss: full pipeline) : %9.2f ms\n",
                bench::ms(cold->launch_ns));
    std::printf("  warm launch (hit: no Loading)     : %9.2f ms  (%.1fx faster)\n",
                bench::ms(warm_ns), speedup);
    std::printf("  RA exchanges after attach         : %u (session evidence cached)\n",
                warm_ra_exchanges);
  }
  report.metric("cold_launch_ns", static_cast<double>(cold->launch_ns), "ns");
  report.metric("warm_launch_ns", static_cast<double>(warm_ns), "ns");
  report.metric("warm_speedup", speedup, "x");
  report.metric("post_attach_ra_exchanges", warm_ra_exchanges, "msgs");

  // ---- phase 2: sustained invocations/sec across the fleet ---------------
  gateway::GatewayConfig fleet_config;
  fleet_config.hostname = "gw-fleet";
  fleet_config.port = 7010;
  fleet_config.ra_port = 7011;
  gateway::Gateway fleet_gw(fabric, fleet_config, to_bytes("gw-bench-id-2"));
  fleet_gw.start().check();
  fleet_gw.add_device(*node0).check();
  fleet_gw.add_device(*node1).check();

  gateway::GatewayClient fleet_client(fabric);
  fleet_client.connect("gw-fleet", 7010).check();
  auto fleet_attach = fleet_client.attach("bench-tenant");
  fleet_attach.ok() ? void() : throw Error("bench: " + fleet_attach.error());
  const Bytes small = adder_module();
  auto small_load = fleet_client.load_module(fleet_attach->session_id, small);
  small_load.ok() ? void() : throw Error("bench: " + small_load.error());

  const auto add_args = [](int i) {
    return std::vector<wasm::Value>{wasm::Value::from_i32(i),
                                    wasm::Value::from_i32(1)};
  };
  // Warm both devices (cold miss once per device), then time.
  for (int i = 0; i < 4; ++i) {
    auto r = fleet_client.invoke(invoke_request(
        fleet_attach->session_id, small_load->measurement, "add", add_args(i)));
    r.ok() ? void() : throw Error("bench: " + r.error());
  }
  const int kInvocations = 2000;
  const std::uint64_t elapsed = bench::time_ns([&] {
    for (int i = 0; i < kInvocations; ++i) {
      auto r = fleet_client.invoke(invoke_request(
          fleet_attach->session_id, small_load->measurement, "add", add_args(i)));
      r.ok() ? void() : throw Error("bench: " + r.error());
    }
  });
  const double per_sec =
      kInvocations / (static_cast<double>(elapsed) / 1e9);

  auto stats = fleet_client.stats(fleet_attach->session_id);
  stats.ok() ? void() : throw Error("bench: " + stats.error());
  const double pool_rate =
      stats->invocations
          ? static_cast<double>(stats->devices[0].pool_hits +
                                stats->devices[1].pool_hits) /
                static_cast<double>(stats->invocations)
          : 0.0;

  if (tables) {
    std::printf("\n=== Gateway: sustained dispatch over %zu devices ===\n",
                stats->devices.size());
    std::printf("  %d invocations in %.1f ms -> %.0f invokes/sec\n", kInvocations,
                bench::ms(elapsed), per_sec);
    std::printf("  warm-pool hit rate: %.1f%%\n", 100.0 * pool_rate);
    for (const gateway::DeviceStats& d : stats->devices)
      std::printf("  %-8s invocations=%-6llu busy=%.1f ms  queue-depth peak=%u\n",
                  d.hostname.c_str(),
                  static_cast<unsigned long long>(d.invocations),
                  bench::ms(d.busy_ns), d.queue_depth_peak);
    if (speedup >= 2.0)
      std::printf("\nwarm launch is %.1fx cheaper than cold (>= 2x bar met)\n",
                  speedup);
    else
      std::printf("\nWARNING: warm launch only %.1fx cheaper than cold\n", speedup);
  }
  report.metric("sustained_invokes_per_sec", per_sec, "1/s");
  report.metric("pool_hit_rate", pool_rate, "ratio");
  report.metric("fleet_devices", static_cast<double>(stats->devices.size()), "");

  // ---- phase 3: worker-count scaling curve -------------------------------
  if (tables) std::printf("\n=== Gateway: worker-count scaling ===\n");
  const Bytes scale_module = adder_module();
  double per_sec_at_1 = 0.0;
  double per_sec_at_8 = 0.0;
  std::uint8_t next_otpmk = 0x90;
  int tier = 0;
  std::vector<std::unique_ptr<core::Device>> scale_fleet;  // outlives gateways
  for (const int workers : {1, 2, 4, 8}) {
    gateway::GatewayConfig config;
    config.hostname = "gw-scale-" + std::to_string(workers);
    config.port = static_cast<std::uint16_t>(7100 + 2 * tier);
    config.ra_port = static_cast<std::uint16_t>(7101 + 2 * tier);
    ++tier;
    gateway::Gateway gw(fabric, config, to_bytes("gw-bench-scale-" +
                                                 std::to_string(workers)));
    gw.start().check();
    const std::size_t fleet_base = scale_fleet.size();
    for (int i = 0; i < workers; ++i) {
      scale_fleet.push_back(bench::boot_device(
          fabric, vendor, config.hostname + "-node-" + std::to_string(i),
          next_otpmk++, /*charge_latency=*/true, /*device_side_latency=*/true));
      gw.add_device(*scale_fleet[fleet_base + i]).check();
    }

    gateway::GatewayClient admin(fabric);
    admin.connect(config.hostname, config.port).check();
    auto session = admin.attach("bench-scale-tenant");
    session.ok() ? void() : throw Error("bench: " + session.error());
    auto module = admin.load_module(session->session_id, scale_module);
    module.ok() ? void() : throw Error("bench: " + module.error());
    // Warm every device's module cache before timing (cold misses steer
    // the two-choice placement to untouched devices via the busy tie-break).
    for (int i = 0; i < 4 * workers; ++i) {
      auto r = admin.invoke(invoke_request(session->session_id,
                                           module->measurement, "add", add_args(i)));
      r.ok() ? void() : throw Error("bench: " + r.error());
    }

    const int client_threads = 2 * workers;  // keep every worker fed
    const int invokes_per_thread = 200;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    const std::uint64_t elapsed_scale = bench::time_ns([&] {
      for (int t = 0; t < client_threads; ++t) {
        clients.emplace_back([&, t] {
          gateway::GatewayClient client(fabric);
          if (!client.connect(config.hostname, config.port).ok()) {
            failures.fetch_add(1);
            return;
          }
          for (int i = 0; i < invokes_per_thread; ++i) {
            auto r = client.invoke(invoke_request(
                session->session_id, module->measurement, "add", add_args(t * 1000 + i)));
            if (!r.ok()) {
              failures.fetch_add(1);
              return;
            }
          }
        });
      }
      for (std::thread& thread : clients) thread.join();
    });
    if (failures.load() != 0) throw Error("bench: scaling client failures");
    const double scale_per_sec = (static_cast<double>(client_threads) *
                                  invokes_per_thread) /
                                 (static_cast<double>(elapsed_scale) / 1e9);
    if (workers == 1) per_sec_at_1 = scale_per_sec;
    if (workers == 8) per_sec_at_8 = scale_per_sec;
    if (tables)
      std::printf("  %d worker%s / %2d client threads : %8.0f invokes/sec\n",
                  workers, workers == 1 ? " " : "s", client_threads,
                  scale_per_sec);
    report.metric("threads_at_" + std::to_string(workers),
                  static_cast<double>(client_threads), "");
    report.metric("invokes_per_sec_at_" + std::to_string(workers), scale_per_sec,
                  "1/s");
  }
  const double scaling = per_sec_at_1 > 0 ? per_sec_at_8 / per_sec_at_1 : 0.0;
  if (tables)
    std::printf("  8-worker speedup over 1 worker : %.1fx %s\n", scaling,
                scaling >= 3.0 ? "(>= 3x bar met)" : "(below the 3x bar)");
  report.metric("worker_scaling_8x_over_1x", scaling, "x");

  // ---- phase 4: attach-storm shard scaling -------------------------------
  // A fleet-wide attach storm is verifier-bound: every handshake's
  // appraisal runs on the gateway's RA endpoint. The verifier charges its
  // per-appraisal cost (policy engine / HSM signing in a production
  // deployment) as wall-clock latency under the owning SHARD lock
  // (GatewayConfig::ra_appraisal_latency_ns — the same convention as the
  // device-side world-switch sleeps of phase 3), so with one shard the
  // whole fleet's appraisals serialise and with N shards they overlap.
  // Four client threads batch-attach sessions (ATTACH_BATCH) against 8
  // devices at 1/2/4/8 shards; the metric is attached sessions per second.
  if (tables) std::printf("\n=== Gateway: attach-storm shard scaling ===\n");
  constexpr int kStormDevices = 8;
  constexpr int kStormThreads = 4;
  constexpr int kStormBatch = 4;  // sessions per ATTACH_BATCH
  constexpr std::uint64_t kAppraisalNs = 20'000'000;  // ~6x one handshake's crypto
  double storm_at_1 = 0.0;
  double storm_at_8 = 0.0;
  std::uint8_t storm_otpmk = 0xB0;
  int storm_tier = 0;
  double fabric_exchanges_per_attach = 0.0;
  std::vector<std::unique_ptr<core::Device>> storm_fleet;  // outlives gateways
  for (const int shards : {1, 2, 4, 8}) {
    gateway::GatewayConfig config;
    config.hostname = "gw-storm-" + std::to_string(shards);
    config.port = static_cast<std::uint16_t>(7200 + 2 * storm_tier);
    config.ra_port = static_cast<std::uint16_t>(7201 + 2 * storm_tier);
    config.ra_shards = static_cast<std::size_t>(shards);
    config.ra_appraisal_latency_ns = kAppraisalNs;
    ++storm_tier;
    gateway::Gateway gw(fabric, config,
                        to_bytes("gw-bench-storm-" + std::to_string(shards)));
    gw.start().check();
    const std::size_t fleet_base = storm_fleet.size();
    for (int i = 0; i < kStormDevices; ++i) {
      storm_fleet.push_back(bench::boot_device(
          fabric, vendor, config.hostname + "-node-" + std::to_string(i),
          storm_otpmk++, /*charge_latency=*/false));
      gw.add_device(*storm_fleet[fleet_base + i]).check();
    }

    // Long-lived connections (dropping one detaches its sessions).
    std::vector<std::unique_ptr<gateway::GatewayClient>> connections;
    for (int t = 0; t < kStormThreads; ++t) {
      connections.push_back(std::make_unique<gateway::GatewayClient>(fabric));
      connections.back()->connect(config.hostname, config.port).check();
    }
    std::atomic<int> failures{0};
    std::atomic<std::uint64_t> wire_exchanges{0};
    std::vector<std::thread> stormers;
    const std::uint64_t elapsed_storm = bench::time_ns([&] {
      for (int t = 0; t < kStormThreads; ++t) {
        stormers.emplace_back([&, t] {
          std::vector<std::string> names;
          for (int n = 0; n < kStormBatch; ++n)
            names.push_back("storm-" + std::to_string(shards) + "-" +
                            std::to_string(t) + "-" + std::to_string(n));
          auto batch = connections[t]->attach_all(names);
          if (!batch.ok()) {
            failures.fetch_add(1);
            return;
          }
          wire_exchanges.fetch_add(batch->ra_fabric_exchanges);
          for (const gateway::AttachBatchResult& result : batch->results)
            if (!result.ok()) failures.fetch_add(1);
        });
      }
      for (std::thread& thread : stormers) thread.join();
    });
    if (failures.load() != 0) throw Error("bench: attach-storm failures");
    const int attaches = kStormThreads * kStormBatch;
    const double per_sec_storm =
        attaches / (static_cast<double>(elapsed_storm) / 1e9);
    fabric_exchanges_per_attach = static_cast<double>(wire_exchanges.load()) /
                                  static_cast<double>(kStormThreads);
    if (shards == 1) storm_at_1 = per_sec_storm;
    if (shards == 8) storm_at_8 = per_sec_storm;
    if (tables)
      std::printf("  %d shard%s : %2d sessions x %d devices in %7.1f ms -> %6.1f attaches/sec\n",
                  shards, shards == 1 ? " " : "s", attaches, kStormDevices,
                  bench::ms(elapsed_storm), per_sec_storm);
    report.metric("attaches_per_sec_at_" + std::to_string(shards),
                  per_sec_storm, "1/s");
  }
  const double storm_scaling = storm_at_1 > 0 ? storm_at_8 / storm_at_1 : 0.0;
  if (tables) {
    std::printf("  8-shard speedup over 1 shard : %.1fx %s\n", storm_scaling,
                storm_scaling >= 3.0 ? "(>= 3x bar met)" : "(below the 3x bar)");
    std::printf("  RA wire round-trips per ATTACH_BATCH : %.0f (2 x %d devices, "
                "independent of the %d sessions)\n",
                fabric_exchanges_per_attach, kStormDevices, kStormBatch);
  }
  report.metric("attach_scaling_8x_over_1x", storm_scaling, "x");
  report.metric("storm_ra_fabric_exchanges_per_batch", fabric_exchanges_per_attach,
                "msgs");

  // ---- phase 5: batched-invoke fan-out -----------------------------------
  // What INVOKE_BATCH amortises: the per-call path pays one blocking
  // SUBMIT/POLL (or INVOKE) wire exchange per item, so a single tenant
  // thread keeps at most ONE item in flight and the fleet's workers idle.
  // invoke_all ships a whole chunk in ONE wire exchange; the gateway fans
  // the lanes across the run queues in one admission pass, so the same
  // single thread keeps every worker busy. Both paths run on the same
  // device-side-latency fleet; the batched/per-call ratio at 8 workers is
  // the acceptance bar (>= 1.5x), and the wire-exchange count per 32-item
  // batch is measured off the fabric's message counter (1, not 32+).
  if (tables) std::printf("\n=== Gateway: batched-invoke fan-out ===\n");
  const Bytes batch_module = adder_module();
  // One chunk exactly: wire exchanges per batch must be 1, so the batch
  // size tracks the client's chunking constant.
  constexpr int kBatchLanes =
      static_cast<int>(gateway::GatewayClient::kInvokeBatchChunk);
  constexpr int kBatchRounds = 4;
  double per_call_at_8 = 0.0;
  double batched_at_8 = 0.0;
  double batch_wire_exchanges = 0.0;
  std::uint8_t batch_otpmk = 0xD0;
  int batch_tier = 0;
  std::vector<std::unique_ptr<core::Device>> batch_fleet;  // outlives gateways
  for (const int workers : {1, 2, 4, 8}) {
    gateway::GatewayConfig config;
    config.hostname = "gw-batch-" + std::to_string(workers);
    config.port = static_cast<std::uint16_t>(7300 + 2 * batch_tier);
    config.ra_port = static_cast<std::uint16_t>(7301 + 2 * batch_tier);
    ++batch_tier;
    gateway::Gateway gw(fabric, config,
                        to_bytes("gw-bench-batch-" + std::to_string(workers)));
    gw.start().check();
    const std::size_t fleet_base = batch_fleet.size();
    for (int i = 0; i < workers; ++i) {
      batch_fleet.push_back(bench::boot_device(
          fabric, vendor, config.hostname + "-node-" + std::to_string(i),
          batch_otpmk++, /*charge_latency=*/true, /*device_side_latency=*/true));
      gw.add_device(*batch_fleet[fleet_base + i]).check();
    }

    // Control plane through the async client API: attach and module load
    // in flight together, futures joined when both are needed.
    gateway::GatewayClient admin(fabric);
    admin.connect(config.hostname, config.port).check();
    auto session_future = admin.attach_async("bench-batch-tenant");
    auto session = session_future.get();
    session.ok() ? void() : throw Error("bench: " + session.error());
    auto module =
        admin.load_async(session->session_id, batch_module).get();
    module.ok() ? void() : throw Error("bench: " + module.error());

    const auto request_at = [&](int i) {
      return invoke_request(session->session_id, module->measurement, "add",
                            add_args(i));
    };
    // Warm every device (cold launches must not pollute the timed runs)
    // and seed the EWMA placement with real service-time samples.
    {
      std::vector<gateway::InvokeRequest> warm;
      for (int i = 0; i < 4 * workers; ++i) warm.push_back(request_at(i));
      for (auto& r : admin.invoke_all(warm))
        r.ok() ? void() : throw Error("bench: " + r.error());
    }

    // Per-call baseline: one blocking wire exchange per item, one item in
    // flight — the pre-INVOKE_BATCH client.
    const std::uint64_t per_call_elapsed = bench::time_ns([&] {
      for (int i = 0; i < kBatchLanes; ++i) {
        auto r = admin.invoke(request_at(i));
        r.ok() ? void() : throw Error("bench: " + r.error());
      }
    });
    const double per_call_per_sec =
        kBatchLanes / (static_cast<double>(per_call_elapsed) / 1e9);

    // Batched: the same lanes as INVOKE_BATCH frames, kBatchRounds times.
    const std::uint64_t wire_before = fabric.messages();
    const std::uint64_t batched_elapsed = bench::time_ns([&] {
      for (int round = 0; round < kBatchRounds; ++round) {
        std::vector<gateway::InvokeRequest> batch;
        batch.reserve(kBatchLanes);
        for (int i = 0; i < kBatchLanes; ++i) batch.push_back(request_at(i));
        for (auto& r : admin.invoke_all(batch))
          r.ok() ? void() : throw Error("bench: " + r.error());
      }
    });
    const double wire_per_batch =
        static_cast<double>(fabric.messages() - wire_before) / kBatchRounds;
    const double batched_per_sec = (static_cast<double>(kBatchRounds) * kBatchLanes) /
                                   (static_cast<double>(batched_elapsed) / 1e9);
    if (workers == 8) {
      per_call_at_8 = per_call_per_sec;
      batched_at_8 = batched_per_sec;
      batch_wire_exchanges = wire_per_batch;
    }
    if (tables)
      std::printf("  %d worker%s : per-call %7.0f /s | batched %7.0f /s "
                  "(%.0f wire exchange%s per %d-lane batch)\n",
                  workers, workers == 1 ? " " : "s", per_call_per_sec,
                  batched_per_sec, wire_per_batch,
                  wire_per_batch == 1.0 ? "" : "s", kBatchLanes);
    report.metric("per_call_invokes_per_sec_at_" + std::to_string(workers),
                  per_call_per_sec, "1/s");
    report.metric("batched_invokes_per_sec_at_" + std::to_string(workers),
                  batched_per_sec, "1/s");
  }
  const double amortisation =
      per_call_at_8 > 0 ? batched_at_8 / per_call_at_8 : 0.0;
  if (tables) {
    std::printf("  batched speedup over per-call at 8 workers : %.1fx %s\n",
                amortisation,
                amortisation >= 1.5 ? "(>= 1.5x bar met)" : "(below the 1.5x bar)");
    std::printf("  wire exchanges per %d-lane batch : %.0f (O(1) in the lane "
                "count; per-call pays %d)\n",
                kBatchLanes, batch_wire_exchanges, kBatchLanes);
  }
  report.metric("invoke_batch_amortisation_8x", amortisation, "x");
  report.metric("invoke_batch_wire_exchanges_per_batch", batch_wire_exchanges,
                "msgs");

  // ---- phase 6: per-device sandbox-pool scaling --------------------------
  // ONE device, growing its slot pool: each slot is a sandbox instance
  // with its own secure monitor and worker thread, so N slots sleep their
  // world-switch latency concurrently where the old 1-worker-per-device
  // plane serialised every invoke behind a single monitor. Same
  // device-side-latency convention as the worker-scaling phase; the
  // metric is per-DEVICE invokes/sec at 1, 2 and 4 slots, and the
  // acceptance bar is >= 2x at 4 slots over 1.
  if (tables) std::printf("\n=== Gateway: per-device sandbox-pool scaling ===\n");
  const Bytes pool_module = adder_module();
  double pool_at_1 = 0.0;
  double pool_at_4 = 0.0;
  double deduped_lanes_measured = 0.0;
  std::uint8_t pool_otpmk = 0xE0;
  int pool_tier = 0;
  std::vector<std::unique_ptr<core::Device>> pool_fleet;  // outlives gateways
  for (const int slots : {1, 2, 4}) {
    gateway::GatewayConfig config;
    config.hostname = "gw-pool-" + std::to_string(slots);
    config.port = static_cast<std::uint16_t>(7400 + 2 * pool_tier);
    config.ra_port = static_cast<std::uint16_t>(7401 + 2 * pool_tier);
    config.slots_per_device = static_cast<std::size_t>(slots);
    ++pool_tier;
    gateway::Gateway gw(fabric, config,
                        to_bytes("gw-bench-pool-" + std::to_string(slots)));
    gw.start().check();
    pool_fleet.push_back(bench::boot_device(
        fabric, vendor, config.hostname + "-node", pool_otpmk++,
        /*charge_latency=*/true, /*device_side_latency=*/true));
    gw.add_device(*pool_fleet.back()).check();

    gateway::GatewayClient admin(fabric);
    admin.connect(config.hostname, config.port).check();
    auto session = admin.attach("bench-pool-tenant");
    session.ok() ? void() : throw Error("bench: " + session.error());
    auto module = admin.load_module(session->session_id, pool_module);
    module.ok() ? void() : throw Error("bench: " + module.error());
    // Warm every SLOT's pool with one concurrent fan (a sequential warm-up
    // would follow the affinity hint onto one slot and leave its siblings
    // cold).
    {
      std::vector<gateway::InvokeRequest> warm;
      for (int i = 0; i < 4 * slots; ++i)
        warm.push_back(invoke_request(session->session_id, module->measurement,
                                      "add", add_args(i)));
      for (auto& r : admin.invoke_all(warm))
        r.ok() ? void() : throw Error("bench: " + r.error());
    }

    const int client_threads = 2 * slots;  // keep every slot fed
    const int invokes_per_thread = 150;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    const std::uint64_t elapsed_pool = bench::time_ns([&] {
      for (int t = 0; t < client_threads; ++t) {
        clients.emplace_back([&, t] {
          gateway::GatewayClient client(fabric);
          if (!client.connect(config.hostname, config.port).ok()) {
            failures.fetch_add(1);
            return;
          }
          for (int i = 0; i < invokes_per_thread; ++i) {
            auto r = client.invoke(invoke_request(
                session->session_id, module->measurement, "add",
                add_args(t * 1000 + i)));
            if (!r.ok()) {
              failures.fetch_add(1);
              return;
            }
          }
        });
      }
      for (std::thread& thread : clients) thread.join();
    });
    if (failures.load() != 0) throw Error("bench: pool-scaling client failures");
    const double pool_per_sec = (static_cast<double>(client_threads) *
                                 invokes_per_thread) /
                                (static_cast<double>(elapsed_pool) / 1e9);
    if (slots == 1) pool_at_1 = pool_per_sec;
    if (slots == 4) pool_at_4 = pool_per_sec;
    if (tables)
      std::printf("  %d slot%s / %d client threads : %8.0f invokes/sec (one device)\n",
                  slots, slots == 1 ? " " : "s", client_threads, pool_per_sec);
    report.metric("invokes_per_sec_at_slots_" + std::to_string(slots),
                  pool_per_sec, "1/s");

    if (slots == 4) {
      // Cross-lane dedup on the same fleet: a 32-lane batch carrying only
      // 8 distinct (measurement, entry, args) tuples executes 8 sandboxes
      // and fans the results to the other 24 lanes.
      std::vector<gateway::InvokeRequest> dup_batch;
      for (int i = 0; i < 32; ++i)
        dup_batch.push_back(invoke_request(session->session_id,
                                           module->measurement, "add",
                                           add_args(i % 8)));
      for (auto& r : admin.invoke_all(dup_batch))
        r.ok() ? void() : throw Error("bench: " + r.error());
      auto pool_stats = admin.stats(session->session_id);
      pool_stats.ok() ? void() : throw Error("bench: " + pool_stats.error());
      deduped_lanes_measured = static_cast<double>(pool_stats->deduped_lanes);
    }
  }
  const double pool_scaling = pool_at_1 > 0 ? pool_at_4 / pool_at_1 : 0.0;
  if (tables) {
    std::printf("  4-slot speedup over 1 slot (one device) : %.1fx %s\n",
                pool_scaling,
                pool_scaling >= 2.0 ? "(>= 2x bar met)" : "(below the 2x bar)");
    std::printf("  deduped lanes in a 32-lane/8-unique batch : %.0f (24 rode a "
                "leader's execution)\n",
                deduped_lanes_measured);
  }
  report.metric("pool_scaling_4x_over_1x", pool_scaling, "x");
  report.metric("deduped_lanes", deduped_lanes_measured, "lanes");

  // ---- phase 7: invocation tracing ---------------------------------------
  // Two gateways with the phase-6 4-slot shape. The TRACED one
  // (trace_sample_n = 1) runs one 32-lane INVOKE_BATCH of unique args
  // against a warm pool: every lane must share the batch trace_id and
  // emit its fixed stage-span set (admit, queue, checkout, tee-entry,
  // guest, tee-exit, exec, respond — no RA, evidence is fresh; no riders,
  // args are unique), exported as Chrome trace_event JSON. The DISABLED
  // one (trace_sample_n = 0, the default every other phase ran with)
  // repeats the phase-6 4-slot throughput workload; its deviation below
  // the phase-6 number is the cost of carrying the tracing plane unused —
  // the CI gate holds it at <= 2%.
  if (tables) std::printf("\n=== Gateway: invocation tracing ===\n");
  double spans_per_invoke = 0.0;
  {
    gateway::GatewayConfig config;
    config.hostname = "gw-traced";
    config.port = 7410;
    config.ra_port = 7411;
    config.slots_per_device = 4;
    config.trace_sample_n = 1;  // trace every admission decision
    gateway::Gateway gw(fabric, config, to_bytes("gw-bench-traced"));
    gw.start().check();
    pool_fleet.push_back(bench::boot_device(fabric, vendor, "gw-traced-node",
                                            pool_otpmk++,
                                            /*charge_latency=*/true,
                                            /*device_side_latency=*/true));
    gw.add_device(*pool_fleet.back()).check();

    gateway::GatewayClient admin(fabric);
    admin.connect(config.hostname, config.port).check();
    auto session = admin.attach("bench-trace-tenant");
    session.ok() ? void() : throw Error("bench: " + session.error());
    auto module = admin.load_module(session->session_id, pool_module);
    module.ok() ? void() : throw Error("bench: " + module.error());
    {
      std::vector<gateway::InvokeRequest> warm;
      for (int i = 0; i < 16; ++i)
        warm.push_back(invoke_request(session->session_id, module->measurement,
                                      "add", add_args(100 + i)));
      for (auto& r : admin.invoke_all(warm))
        r.ok() ? void() : throw Error("bench: " + r.error());
    }
    gw.span_sink().drain();  // discard warm-up spans

    constexpr int kTraceLanes = 32;  // one INVOKE_BATCH frame exactly
    std::vector<gateway::InvokeRequest> batch;
    for (int i = 0; i < kTraceLanes; ++i)
      batch.push_back(invoke_request(session->session_id, module->measurement,
                                     "add", add_args(i)));
    std::uint64_t batch_trace = 0;
    for (auto& r : admin.invoke_all(batch)) {
      r.ok() ? void() : throw Error("bench: " + r.error());
      if (r->trace_id == 0) throw Error("bench: traced lane lost its trace id");
      if (batch_trace == 0) batch_trace = r->trace_id;
      if (r->trace_id != batch_trace)
        throw Error("bench: batch lanes split across trace ids");
    }

    std::vector<obs::SpanRecord> spans = gw.span_sink().drain();
    std::erase_if(spans, [&](const obs::SpanRecord& span) {
      return span.trace_id != batch_trace;
    });
    spans_per_invoke = static_cast<double>(spans.size()) / kTraceLanes;
    if (gw.span_sink().dropped() != 0)
      throw Error("bench: span sink dropped records under a 32-lane batch");

    const std::string chrome = obs::SpanSink::to_chrome_trace(spans);
    const char* trace_path = "trace_invoke_batch.json";
    if (std::FILE* out = std::fopen(trace_path, "w")) {
      std::fwrite(chrome.data(), 1, chrome.size(), out);
      std::fclose(out);
    } else {
      throw Error("bench: cannot write trace export");
    }
    if (tables)
      std::printf("  32-lane batch, trace %016llx : %zu spans (%.1f per lane) "
                  "-> %s\n",
                  static_cast<unsigned long long>(batch_trace), spans.size(),
                  spans_per_invoke, trace_path);
  }

  double disabled_overhead_pct = 0.0;
  {
    gateway::GatewayConfig config;
    config.hostname = "gw-untraced";
    config.port = 7412;
    config.ra_port = 7413;
    config.slots_per_device = 4;  // trace_sample_n stays 0: tracing off
    gateway::Gateway gw(fabric, config, to_bytes("gw-bench-untraced"));
    gw.start().check();
    pool_fleet.push_back(bench::boot_device(fabric, vendor, "gw-untraced-node",
                                            pool_otpmk++,
                                            /*charge_latency=*/true,
                                            /*device_side_latency=*/true));
    gw.add_device(*pool_fleet.back()).check();

    gateway::GatewayClient admin(fabric);
    admin.connect(config.hostname, config.port).check();
    auto session = admin.attach("bench-untraced-tenant");
    session.ok() ? void() : throw Error("bench: " + session.error());
    auto module = admin.load_module(session->session_id, pool_module);
    module.ok() ? void() : throw Error("bench: " + module.error());
    {
      std::vector<gateway::InvokeRequest> warm;
      for (int i = 0; i < 16; ++i)
        warm.push_back(invoke_request(session->session_id, module->measurement,
                                      "add", add_args(200 + i)));
      for (auto& r : admin.invoke_all(warm))
        r.ok() ? void() : throw Error("bench: " + r.error());
    }

    const int client_threads = 8;
    const int invokes_per_thread = 150;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(client_threads);
    const std::uint64_t elapsed = bench::time_ns([&] {
      for (int t = 0; t < client_threads; ++t) {
        clients.emplace_back([&, t] {
          gateway::GatewayClient client(fabric);
          if (!client.connect(config.hostname, config.port).ok()) {
            failures.fetch_add(1);
            return;
          }
          for (int i = 0; i < invokes_per_thread; ++i) {
            auto r = client.invoke(invoke_request(
                session->session_id, module->measurement, "add",
                add_args(t * 1000 + i)));
            if (!r.ok()) {
              failures.fetch_add(1);
              return;
            }
          }
        });
      }
      for (std::thread& thread : clients) thread.join();
    });
    if (failures.load() != 0) throw Error("bench: untraced client failures");
    const double untraced_per_sec =
        (static_cast<double>(client_threads) * invokes_per_thread) /
        (static_cast<double>(elapsed) / 1e9);
    if (pool_at_4 > 0.0)
      disabled_overhead_pct =
          std::max(0.0, (pool_at_4 - untraced_per_sec) / pool_at_4 * 100.0);
    if (tables)
      std::printf("  tracing disabled : %8.0f invokes/sec (phase-6 plane ran "
                  "%8.0f) -> %.2f%% overhead\n",
                  untraced_per_sec, pool_at_4, disabled_overhead_pct);
  }
  report.metric("trace_spans_per_invoke", spans_per_invoke, "spans");
  report.metric("tracing_disabled_overhead_pct", disabled_overhead_pct, "%");

  // ---- phase 8: native tier-up -------------------------------------------
  // Pairs of single-board gateways with latency charging off (the phase
  // isolates guest compute, not world-switch accounting), each pair running
  // one PolyBench kernel: gem — the fig5 double-precision mul-add triple
  // loop, the phase-2 float surface — and flo — the integer floyd-warshall
  // core the phase-1 JIT already lowered. Per pair the BASELINE gateway pins
  // jit_tiering off, so every invoke rides the AOT stream; the TIERED one
  // marks the function hot on first touch, lets the control-plane sweep
  // compile it (the background sweeper may already have — the explicit call
  // just bounds the race), and times the same invoke on the native entry.
  // The ratios are CI gates: the double kernel must buy >= 4x (floats lower
  // inline now, not through thunks) with ZERO jit_fallback_float traffic in
  // steady state, the int kernel >= 2x, and the tiered gateway's
  // tier_up_compiles counter must be > 0 for the ratios to mean anything.
  // On hosts where the JIT cannot run (non-x86-64 or WATZ_DISABLE_JIT) the
  // phase still executes — wholesale AOT fallback — and reports speedup ~1 /
  // compiles 0; the gating leg of CI never sees that because it pins the
  // JIT on.
  if (tables)
    std::printf("\n=== Gateway: native tier-up (PolyBench gem + flo) ===\n");
  double native_speedup = 1.0;   // gem, the double-precision headline gate
  double int_speedup = 1.0;      // flo, the phase-1 integer floor
  double tier_compiles = 0.0;
  double float_fallbacks = 0.0;  // steady-state jit_fallback_float on gem
  {
    const int reps = 3;
    std::uint8_t tier_otpmk = 0xF8;
    int tier_port = 7420;

    // Boots a gateway + board pair, loads `binary`, and returns the median
    // gateway-invoke latency after `pre_measure` ran once. The fallback
    // delta is taken across the measured reps only: the warm-up invoke may
    // legally ride the AOT stream, steady state must not thunk.
    auto measure = [&](gateway::GatewayConfig config, const Bytes& binary,
                       int kernel_n,
                       const std::function<void(gateway::Gateway&)>& pre,
                       double* compiles_out, double* float_fallback_out) {
      gateway::Gateway gw(fabric, config, to_bytes("gw-bench-" + config.hostname));
      gw.start().check();
      auto board = bench::boot_device(fabric, vendor, config.hostname + "-node",
                                      tier_otpmk++, /*charge_latency=*/false);
      gw.add_device(*board).check();

      gateway::GatewayClient admin(fabric);
      admin.connect(config.hostname, config.port).check();
      auto session = admin.attach("bench-tier-tenant");
      session.ok() ? void() : throw Error("bench: " + session.error());
      auto module = admin.load_module(session->session_id, binary);
      module.ok() ? void() : throw Error("bench: " + module.error());

      auto run_once = [&] {
        gateway::InvokeRequest req =
            invoke_request(session->session_id, module->measurement, "run",
                           {wasm::Value::from_i32(kernel_n)});
        req.heap_bytes = 2 << 20;  // comfortably holds the 16-page memory
        auto r = admin.invoke(req);
        r.ok() ? void() : throw Error("bench: " + r.error());
      };
      run_once();  // warms the pool slot (and, tiered, trips the heat counter)
      pre(gw);
      const std::uint64_t float_before = gw.stats().jit_fallback_float;
      const std::uint64_t ns = bench::median_ns(reps, run_once);
      if (compiles_out != nullptr)
        *compiles_out = static_cast<double>(gw.stats().tier_up_compiles);
      if (float_fallback_out != nullptr)
        *float_fallback_out =
            static_cast<double>(gw.stats().jit_fallback_float - float_before);
      return ns;
    };

    auto kernel_pair = [&](const char* name, double* speedup_out,
                           double* compiles_out, double* float_fallback_out) {
      const polybench::KernelDef* kernel = polybench::find_kernel(name);
      if (kernel == nullptr)
        throw Error("bench: kernel missing: " + std::string(name));
      wcc::CompileOptions options;
      options.memory_pages = 16;  // both kernels touch well under 16 pages;
                                  // keeps per-invoke instantiation cost out
                                  // of the compute ratio
      auto binary = wcc::compile(kernel->source, options);
      binary.ok() ? void() : throw Error("bench: " + binary.error());

      gateway::GatewayConfig baseline;
      baseline.hostname = std::string("gw-aot-") + name;
      baseline.port = tier_port++;
      baseline.ra_port = tier_port++;
      baseline.jit_tiering = false;  // the pure AOT-stream yardstick
      const std::uint64_t aot_ns =
          measure(baseline, *binary, kernel->n, [](gateway::Gateway&) {},
                  nullptr, nullptr);

      gateway::GatewayConfig tiered;
      tiered.hostname = std::string("gw-tier-") + name;
      tiered.port = tier_port++;
      tiered.ra_port = tier_port++;
      tiered.jit_hot_calls = 1;  // first touch marks the function hot
      const std::uint64_t native_ns = measure(
          tiered, *binary, kernel->n,
          [](gateway::Gateway& gw) { gw.sweep_tier_compiles(); }, compiles_out,
          float_fallback_out);

      if (native_ns > 0)
        *speedup_out =
            static_cast<double>(aot_ns) / static_cast<double>(native_ns);
      if (tables)
        std::printf("  %s n=%d : AOT stream %8.2f ms | native %8.2f ms -> "
                    "%.2fx%s\n",
                    name, kernel->n, aot_ns / 1e6, native_ns / 1e6,
                    *speedup_out,
                    wasm::jit::jit_available() ? "" : " (JIT unavailable)");
    };

    kernel_pair("gem", &native_speedup, &tier_compiles, &float_fallbacks);
    kernel_pair("flo", &int_speedup, nullptr, nullptr);
    if (tables)
      std::printf("  gem steady state: %.0f float-thunk op(s), %.0f "
                  "function(s) compiled\n",
                  float_fallbacks, tier_compiles);
  }
  report.metric("native_speedup_over_aot_stream", native_speedup, "x");
  report.metric("native_speedup_int_kernel", int_speedup, "x");
  report.metric("tier_up_compiles", tier_compiles, "functions");
  report.metric("jit_fallback_float", float_fallbacks, "ops");

  // ---- phase 8b: fig8 genann training step, AOT-pinned vs tiered ---------
  // The paper's genann workload is double-heavy guest compute (sigmoid
  // forward passes and backprop deltas, plus (int)<->(double) conversions in
  // the dataset walk) — exactly the phase-2 surface. Run one training step
  // on a REE instance pinned to the AOT stream and one with a
  // force-compiled tier, and gate the ratio: if float lowering regresses,
  // this collapses toward 1 long before the differential suite notices
  // anything functionally wrong.
  if (tables)
    std::printf("\n=== Gateway: genann training step, AOT vs tiered ===\n");
  double genann_speedup = 1.0;
  {
    static const wasm::ImportResolver kNoImports;
    const Bytes module = ann::training_module();
    const Bytes wire = ann::encode_dataset(ann::make_iris_like(150));
    const int kIters = 3;

    auto train_median_ns = [&](bool tiered) {
      auto inst = bench::instantiate_ree(module, kNoImports);
      inst->memory()->copy_in(ann::GuestLayout::kDatasetPtr, wire).check();
      if (tiered && wasm::jit::jit_available()) {
        wasm::jit::TierConfig config;
        config.hot_threshold = 1;
        auto tier = std::make_shared<wasm::jit::TierSet>(
            &inst->module(), inst->compiled, std::move(config));
        tier->compile_all();
        inst->tier = tier;
      }
      auto run_once = [&] {
        const int correct = bench::invoke_i32(
            *inst, "train_at",
            {wasm::Value::from_i32(ann::GuestLayout::kDatasetPtr),
             wasm::Value::from_i32(kIters)});
        if (correct <= 0) throw Error("bench: genann training went sideways");
      };
      run_once();  // warm (weights move, but per-step cost is stable)
      return bench::median_ns(3, run_once);
    };

    const std::uint64_t aot_ns = train_median_ns(false);
    const std::uint64_t native_ns = train_median_ns(true);
    if (native_ns > 0)
      genann_speedup =
          static_cast<double>(aot_ns) / static_cast<double>(native_ns);
    if (tables)
      std::printf("  train_at x%d : AOT stream %8.2f ms | tiered %8.2f ms -> "
                  "%.2fx%s\n",
                  kIters, aot_ns / 1e6, native_ns / 1e6, genann_speedup,
                  wasm::jit::jit_available() ? "" : " (JIT unavailable)");
  }
  report.metric("genann_native_speedup", genann_speedup, "x");

  // ---- phase 9: chaos failover on the prewarmed path ----------------------
  // A 2-device fleet behind a ChaosFabric with cross-device module prewarm
  // on. Device 0 is rebooted and its RA link hard-dropped, so every
  // placement onto it fails appraisal and the session migrates to device 1
  // — which the prewarm sweep already warmed. The gate: migrations > 0
  // (recovery actually re-placed the session) and fleet-wide cold cache
  // misses == 0 (failover landed on the prewarmed module, never paying a
  // cold Loading phase).
  if (tables) std::printf("\n=== Gateway: chaos failover on prewarmed fleet ===\n");
  double failover_migrations = 0.0;
  double prewarm_cold_misses = 0.0;
  double failover_per_sec = 0.0;
  {
    net::ChaosFabric chaos;
    gateway::GatewayConfig config;
    config.hostname = "gw-chaos";
    config.port = 7430;
    config.ra_port = 7431;
    config.slots_per_device = 2;
    config.module_prewarm = true;
    config.invoke_memo_ttl_ns = 60'000'000'000ull;
    gateway::Gateway gw(chaos, config, to_bytes("gw-bench-chaos"));
    gw.start().check();
    auto live = bench::boot_device(chaos, vendor, "gw-chaos-node-1", 0x31);
    auto doomed = bench::boot_device(chaos, vendor, "gw-chaos-node-0", 0x30);
    gw.add_device(*doomed).check();
    gw.add_device(*live).check();

    gateway::GatewayClient admin(chaos);
    admin.connect(config.hostname, config.port).check();
    auto session = admin.attach("bench-chaos-tenant");
    session.ok() ? void() : throw Error("bench: " + session.error());
    const Bytes chaos_module = adder_module();
    auto module = admin.load_module(session->session_id, chaos_module);
    module.ok() ? void() : throw Error("bench: " + module.error());
    if (gw.sweep_module_prewarms() != 2)
      throw Error("bench: prewarm sweep missed a device");

    // Kill device 0's trust path: stale evidence + an RA link that drops
    // every re-handshake frame.
    gw.add_device(*doomed).check();  // reboot: boot count bumps
    gw.sweep_module_prewarms();      // its rebuilt cache re-warmed
    net::ChaosPolicy ra_down;
    ra_down.drop_permille = 1000;
    chaos.set_policy(config.hostname, config.ra_port, ra_down);

    constexpr int kFailoverInvokes = 200;
    const std::uint64_t elapsed_chaos = bench::time_ns([&] {
      for (int i = 0; i < kFailoverInvokes; ++i) {
        auto r = admin.invoke(invoke_request(session->session_id,
                                             module->measurement, "add",
                                             add_args(i)));
        r.ok() ? void() : throw Error("bench: " + r.error());
      }
    });
    chaos.clear_policies();
    failover_per_sec =
        kFailoverInvokes / (static_cast<double>(elapsed_chaos) / 1e9);

    auto chaos_stats = admin.stats(session->session_id);
    chaos_stats.ok() ? void() : throw Error("bench: " + chaos_stats.error());
    failover_migrations = static_cast<double>(chaos_stats->migrations);
    for (const gateway::DeviceStats& d : chaos_stats->devices)
      prewarm_cold_misses += static_cast<double>(d.cache_misses);
    if (tables)
      std::printf("  %d invokes through a dead device's shadow : %8.0f "
                  "invokes/sec (migrations=%.0f, cold misses=%.0f)\n",
                  kFailoverInvokes, failover_per_sec, failover_migrations,
                  prewarm_cold_misses);
  }
  report.metric("failover_invokes_per_sec", failover_per_sec, "1/s");
  report.metric("failover_migrations", failover_migrations, "count");
  report.metric("prewarm_cold_misses", prewarm_cold_misses, "count");
  return 0;
}
