// Shared helpers for the evaluation harness (one binary per paper
// table/figure; see DESIGN.md SS3 for the experiment index).
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "hw/clock.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"

namespace watz::bench {

/// Wall time of one invocation, in nanoseconds.
inline std::uint64_t time_ns(const std::function<void()>& fn) {
  const std::uint64_t t0 = hw::monotonic_ns();
  fn();
  return hw::monotonic_ns() - t0;
}

/// Median of `reps` timed runs.
inline std::uint64_t median_ns(int reps, const std::function<void()>& fn) {
  std::vector<std::uint64_t> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) samples.push_back(time_ns(fn));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Machine-readable results for the BENCH_*.json perf trajectory.
///
/// Construct one per bench binary; record metrics alongside the human
/// tables. When the binary was run with `--json`, flush() (or the
/// destructor) emits a single JSON object on stdout:
///
///   {"bench":"<name>","metrics":{"<key>":{"value":<v>,"unit":"<u>"},...}}
///
/// Callers that want table-free output can gate their printf on json().
class BenchReport {
 public:
  BenchReport(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") json_ = true;
  }
  ~BenchReport() { flush(); }

  bool json() const noexcept { return json_; }

  void metric(const std::string& key, double value, const std::string& unit = "") {
    metrics_.emplace_back(Metric{key, value, unit});
  }

  void flush() {
    if (!json_ || flushed_) return;
    flushed_ = true;
    std::printf("{\"bench\":\"%s\",\"metrics\":{", name_.c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::printf("%s\"%s\":{\"value\":%.6g,\"unit\":\"%s\"}", i ? "," : "",
                  m.key.c_str(), m.value, m.unit.c_str());
    }
    std::printf("}}\n");
  }

 private:
  struct Metric {
    std::string key;
    double value;
    std::string unit;
  };
  std::string name_;
  bool json_ = false;
  bool flushed_ = false;
  std::vector<Metric> metrics_;
};

/// A booted attester board with the paper's latency calibration.
/// `device_side_latency` makes the charges sleep instead of busy-wait:
/// the board is remote, so its world-switch time must not occupy a CPU of
/// the host driving the fleet (fleet-scaling benches set it; single-board
/// latency benches keep the on-SoC busy-wait).
inline std::unique_ptr<core::Device> boot_device(net::Fabric& fabric,
                                                 const core::Vendor& vendor,
                                                 const std::string& hostname,
                                                 std::uint8_t id,
                                                 bool charge_latency = true,
                                                 bool device_side_latency = false) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = charge_latency;
  config.latency.device_side = device_side_latency;
  auto device = core::Device::boot(fabric, vendor, config);
  device.ok() ? void() : throw Error("bench: " + device.error());
  return std::move(*device);
}

/// Instantiates a Wasm module outside any TEE (the "WAMR in REE" setting).
inline std::unique_ptr<wasm::Instance> instantiate_ree(
    ByteView binary, const wasm::ImportResolver& imports,
    wasm::ExecMode mode = wasm::ExecMode::Aot) {
  auto module = wasm::decode_module(binary);
  module.ok() ? void() : throw Error("bench: " + module.error());
  auto inst = wasm::Instance::instantiate(std::move(*module), imports, mode);
  inst.ok() ? void() : throw Error("bench: " + inst.error());
  return std::move(*inst);
}

inline std::int32_t invoke_i32(wasm::Instance& inst, const std::string& fn,
                               std::vector<wasm::Value> args) {
  auto r = inst.invoke(fn, args);
  r.ok() ? void() : throw Error("bench: " + fn + ": " + r.error());
  return r->empty() ? 0 : r->front().i32();
}

inline double invoke_f64(wasm::Instance& inst, const std::string& fn,
                         std::vector<wasm::Value> args) {
  auto r = inst.invoke(fn, args);
  r.ok() ? void() : throw Error("bench: " + fn + ": " + r.error());
  return r->front().f64();
}

}  // namespace watz::bench
