// Table IV — end-to-end execution time of the WASI-RA API, attester and
// verifier co-located (as in the paper). Paper: handshake 1.34 s,
// collect_quote 239 ms, send_quote 1 ms, receive_data 168 ms (0.1 MB) to
// 209 ms (1 MB); handshake dominated by key generation and asymmetric ops.
#include "bench/harness.hpp"
#include "ann/dataset.hpp"
#include "core/guest_builder.hpp"
#include "core/verifier_host.hpp"
#include "crypto/fortuna.hpp"
#include "ra/attester.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("tab4-vendor"));
  // Paper: attester and verifier run on the same development board.
  auto board = bench::boot_device(fabric, vendor, "board", 0x71);

  crypto::Fortuna rng(to_bytes("tab4-rng"));
  core::VerifierHost verifier(*board, rng);
  verifier.listen(4433).check();

  const Bytes app = core::build_attester_app(verifier.identity(), "board", 4433);
  const auto claim = crypto::sha256(app);
  verifier.verifier().endorse_device(board->attestation_service().public_key());
  verifier.verifier().add_reference_measurement(claim);

  Bytes secret;  // swapped per row below
  verifier.verifier().set_secret_provider(
      [&secret](const crypto::Sha256Digest&) { return secret; });

  std::printf("=== Table IV: WASI-RA end-to-end times ===\n");

  // Phase-level timing through the runtime's own supplicant/socket path.
  optee::Supplicant& supplicant = board->supplicant();
  const auto& service = board->attestation_service();

  for (const std::size_t size : {std::size_t{100} * 1024, std::size_t{1024} * 1024}) {
    secret = ann::encode_dataset(
        ann::replicate_to_size(ann::make_iris_like(150), size));

    ra::AttesterSession session(rng, verifier.identity());
    auto conn = supplicant.socket_connect("board", 4433);
    conn.ok() ? void() : throw Error(conn.error());

    // handshake: msg0 out, msg1 in, msg1 processed (keys derived).
    Bytes msg1;
    const std::uint64_t handshake_ns = bench::time_ns([&] {
      auto reply = supplicant.socket_send_recv(*conn, session.make_msg0());
      reply.ok() ? void() : throw Error(reply.error());
      msg1 = std::move(*reply);
      session.process_msg1(msg1).check();
    });

    // collect_quote: evidence generation in the attestation service.
    attestation::Evidence evidence;
    const std::uint64_t collect_ns = bench::time_ns(
        [&] { evidence = service.issue_evidence(session.anchor(), claim); });

    // send_quote: msg2 assembly + round trip; the reply (msg3) is produced
    // only after the verifier finishes appraising the evidence, which is
    // why the paper sees the verifier's asymmetric cost on this path.
    Bytes msg3;
    const std::uint64_t send_ns = bench::time_ns([&] {
      auto msg2 = session.make_msg2(evidence);
      msg2.ok() ? void() : throw Error(msg2.error());
      auto reply = supplicant.socket_send_recv(*conn, *msg2);
      reply.ok() ? void() : throw Error(reply.error());
      msg3 = std::move(*reply);
    });

    // receive_data: decrypt + authenticate the secret blob.
    Bytes blob;
    const std::uint64_t receive_ns = bench::time_ns([&] {
      auto opened = session.handle_msg3(msg3);
      opened.ok() ? void() : throw Error(opened.error());
      blob = std::move(*opened);
    });
    supplicant.socket_close(*conn);

    const std::uint64_t total =
        handshake_ns + collect_ns + send_ns + receive_ns;
    std::printf("\n  secret blob: %.1f MB (received %zu bytes)\n",
                static_cast<double>(size) / (1024.0 * 1024.0), blob.size());
    std::printf("    handshake    : %10.2f ms (paper: 1340 ms)\n", bench::ms(handshake_ns));
    std::printf("    collect_quote: %10.2f ms (paper:  239 ms)\n", bench::ms(collect_ns));
    std::printf("    send_quote   : %10.2f ms (paper: ~1 ms + verifier appraisal)\n",
                bench::ms(send_ns));
    std::printf("    receive_data : %10.2f ms (paper: 168-209 ms)\n", bench::ms(receive_ns));
    std::printf("    total        : %10.2f ms (paper: 1.75-1.79 s)\n", bench::ms(total));
    // Which phase dominates depends on the crypto library's relative
    // speeds: on the paper's A53 + LibTomCrypt, P-256 ops (~240 ms) dwarf
    // AES-GCM, so the handshake wins; our scalar AES-GCM is the slower
    // primitive, so the blob-size-dependent phases win at 1 MB. The
    // structural claim that survives: fixed-size phases are constant,
    // receive_data grows linearly with the blob (see EXPERIMENTS.md).
    const char* dominant = "handshake";
    std::uint64_t max_ns = handshake_ns;
    if (send_ns > max_ns) { dominant = "send_quote(+appraisal)"; max_ns = send_ns; }
    if (receive_ns > max_ns) { dominant = "receive_data"; max_ns = receive_ns; }
    if (collect_ns > max_ns) { dominant = "collect_quote"; }
    std::printf("    dominant phase on this host: %s (paper: handshake)\n", dominant);
  }

  // Full in-sandbox flow through the actual WASI-RA host functions.
  core::AppConfig config;
  config.heap_bytes = 14 << 20;  // paper: 14 MB attester TA heap
  secret = ann::encode_dataset(ann::replicate_to_size(ann::make_iris_like(150), 100 * 1024));
  auto loaded = board->runtime().launch(app, config);
  loaded.ok() ? void() : throw Error(loaded.error());
  const std::uint64_t guest_total = bench::time_ns([&] {
    auto r = (*loaded)->invoke("attest", {});
    r.ok() ? void() : throw Error(r.error());
    if (r->front().i32() < 0) throw Error("guest attestation failed");
  });
  std::printf("\n  full WASI-RA flow from inside the Wasm sandbox (0.1 MB): %.2f ms\n",
              bench::ms(guest_total));
  return 0;
}
