// Fig 7 — execution time of msg3 (AES-128-GCM over the secret blob) as a
// function of blob size, 0.5..3 MB. Paper: linear, 3 ms at 0.5 MB up to
// 17 ms at 3 MB on the A53; encrypt and decrypt evolve proportionally.
#include "bench/harness.hpp"
#include "crypto/fortuna.hpp"
#include "crypto/gcm.hpp"

int main() {
  using namespace watz;
  crypto::Fortuna rng(to_bytes("fig7"));
  crypto::Key128 ke;
  rng.fill(ke);
  const crypto::Aes cipher(ke);

  std::printf("=== Fig 7: msg3 encrypt/decrypt time vs secret blob size ===\n");
  std::printf("%8s | %12s %12s | %10s\n", "size", "encrypt ms", "decrypt ms",
              "MB/s (enc)");

  double first_ratio = 0;
  for (int half_mb = 1; half_mb <= 6; ++half_mb) {
    const std::size_t size = static_cast<std::size_t>(half_mb) * 512 * 1024;
    Bytes blob(size);
    rng.fill(blob);
    crypto::GcmIv iv{};
    iv[0] = static_cast<std::uint8_t>(half_mb);

    Bytes sealed;
    const std::uint64_t enc_ns =
        bench::median_ns(3, [&] { sealed = crypto::gcm_seal(cipher, iv, {}, blob); });
    const std::uint64_t dec_ns = bench::median_ns(3, [&] {
      auto opened = crypto::gcm_open(cipher, iv, {}, sealed);
      opened.ok() ? void() : throw Error(opened.error());
    });

    const double mb = static_cast<double>(size) / (1024.0 * 1024.0);
    std::printf("%6.1fMB | %12.2f %12.2f | %10.1f\n", mb, bench::ms(enc_ns),
                bench::ms(dec_ns), mb / (bench::ms(enc_ns) / 1000.0));
    if (half_mb == 1) first_ratio = static_cast<double>(enc_ns) / size;
    if (half_mb == 6) {
      const double last_ratio = static_cast<double>(enc_ns) / size;
      std::printf("\nlinearity check: ns/byte at 0.5MB = %.2f, at 3MB = %.2f "
                  "(paper: proportional growth)\n",
                  first_ratio, last_ratio);
    }
  }
  return 0;
}
