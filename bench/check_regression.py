#!/usr/bin/env python3
"""Perf-regression gate: compare a bench --json report against a baseline.

Usage: check_regression.py <report.json> <baseline.json>

The report is the single-object output of a bench binary run with --json
(see bench/harness.hpp BenchReport):

    {"bench":"<name>","metrics":{"<key>":{"value":<v>,"unit":"<u>"},...}}

The baseline maps metric keys to bounds:

    {"metrics": {"<key>": {"min": <v>} | {"max": <v>} | {"eq": <v>}
                          | {"gt": <v>}, ...}}

"eq" is for exact structural invariants (wire exchange counts, dedup
arithmetic) where any drift in either direction is a bug, not noise.
"gt" is a strict lower bound for liveness counters ("the tier-up plane
compiled *something*") where the exact count is environment-dependent
but zero means the machinery silently disengaged.
Every baseline key must be present in the report (a silently dropped
metric is itself a regression) and must satisfy its bounds. Exit status:
0 when every gate holds, 1 otherwise — wire it straight into CI.
"""
import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        # The bench may print human tables before the JSON object; the
        # report line is the last line starting with '{'.
        lines = [line for line in f if line.lstrip().startswith("{")]
        if not lines:
            print(f"FAIL: {argv[1]} contains no JSON report", file=sys.stderr)
            return 1
        report = json.loads(lines[-1])
    with open(argv[2]) as f:
        baseline = json.load(f)

    metrics = report.get("metrics", {})
    failures = 0
    print(f"bench-gate: {report.get('bench', '?')} vs {argv[2]}")
    for key, bounds in baseline.get("metrics", {}).items():
        if key not in metrics:
            print(f"  FAIL {key:45s} missing from report")
            failures += 1
            continue
        value = metrics[key]["value"]
        verdicts = []
        ok = True
        if "min" in bounds:
            verdicts.append(f">= {bounds['min']}")
            ok = ok and value >= bounds["min"]
        if "max" in bounds:
            verdicts.append(f"<= {bounds['max']}")
            ok = ok and value <= bounds["max"]
        if "eq" in bounds:
            verdicts.append(f"== {bounds['eq']}")
            ok = ok and value == bounds["eq"]
        if "gt" in bounds:
            verdicts.append(f"> {bounds['gt']}")
            ok = ok and value > bounds["gt"]
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {key:45s} {value:12.4g}  (want {' and '.join(verdicts)})")
        if not ok:
            failures += 1
    if failures:
        print(f"bench-gate: {failures} gate(s) FAILED", file=sys.stderr)
        return 1
    print("bench-gate: all gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
