// Fig 4 — startup breakdown of Wasm applications in WaTZ, for AOT binaries
// of 1..9 MB (9 MB == the OP-TEE shared-memory cap). Paper: loading ~73%,
// initialisation ~16%, memory allocation ~5%, hashing ~4%, the rest <1%.
#include "bench/harness.hpp"
#include "wasm/builder.hpp"

namespace {

using namespace watz;

/// Builds a module of roughly `target_mb` megabytes by replicating unrolled
/// arithmetic functions (the paper unrolls loop iterations to reach 1 MB,
/// then replicates that output).
Bytes sized_module(int target_mb) {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  // Aim slightly below the nominal size so the 9 MB binary fits the 9 MB
  // shared-memory cap exactly, as in the paper.
  const std::size_t target = static_cast<std::size_t>(target_mb) * 1024 * 1024 - 160 * 1024;

  // One unrolled function is ~64 KiB of code.
  const int kAddsPerFunc = 9000;
  std::uint32_t first = 0;
  std::size_t emitted = 0;
  int index = 0;
  while (emitted < target) {
    wasm::CodeEmitter e;
    e.i64_const(index + 1);
    for (int i = 0; i < kAddsPerFunc; ++i) {
      e.i64_const(0x0102030405060708LL + i).op(wasm::kI64Add);
    }
    const auto f = b.add_function({{}, {wasm::ValType::I64}});
    if (index == 0) first = f;
    b.set_body(f, e.bytes());
    emitted += kAddsPerFunc * 11;  // ~11 bytes per const+add pair
    ++index;
  }

  // Entry point: run the first unrolled function once ("the Wasm program
  // stops after the first Wasm instruction" -- we time until entry).
  const auto entry = b.add_function({{}, {wasm::ValType::I64}});
  wasm::CodeEmitter e;
  e.call(first);
  b.set_body(entry, e.bytes());
  b.export_function("entry", entry);
  return b.build();
}

}  // namespace

int main() {
  std::printf("=== Fig 4: startup breakdown vs application size ===\n");
  std::printf("%5s %9s | %10s %10s %8s %8s %10s %11s | %s\n", "size", "binMB",
              "transit%", "alloc%", "hash%", "init%", "loading%", "instantiate%",
              "total ms");

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fig4-vendor"));
  // Latency enabled: the transition slice is part of the breakdown.
  auto device = bench::boot_device(fabric, vendor, "board", 0x41);

  double loading_sum = 0;
  int rows = 0;
  for (int mb = 1; mb <= 9; ++mb) {
    const Bytes binary = sized_module(mb);
    core::AppConfig config;
    config.heap_bytes = 1 << 20;
    auto app = device->runtime().launch(binary, config);
    if (!app.ok()) {
      std::printf("%4dMB: launch failed: %s\n", mb, app.error().c_str());
      continue;
    }
    // "Execution" slice: first instruction only.
    core::StartupBreakdown s = (*app)->startup();
    s.execution_ns = bench::time_ns([&] { (void)(*app)->instance().invoke("entry", {}); });
    const double total = static_cast<double>(s.total_ns());
    auto pct = [&](std::uint64_t ns) { return 100.0 * static_cast<double>(ns) / total; };
    std::printf("%4dMB %9.2f | %9.1f%% %9.1f%% %7.1f%% %7.1f%% %9.1f%% %10.1f%% | %8.1f\n",
                mb, static_cast<double>(binary.size()) / (1024.0 * 1024.0),
                pct(s.transition_ns), pct(s.memory_allocation_ns), pct(s.hashing_ns),
                pct(s.initialisation_ns), pct(s.loading_ns), pct(s.instantiate_ns),
                bench::ms(s.total_ns()));
    loading_sum += pct(s.loading_ns);
    ++rows;
  }
  if (rows > 0)
    std::printf("\nloading phase average: %.1f%% of startup (paper: ~73%%; "
                "hashing ~4%%, allocation ~5%%)\n",
                loading_sum / rows);

  // The 9 MB shared-memory cap: a 10 MB binary must be refused.
  const Bytes too_big = sized_module(10);
  auto refused = device->runtime().launch(too_big, core::AppConfig{});
  std::printf("10MB binary refused by the shared-memory cap: %s\n",
              refused.ok() ? "NO (unexpected)" : "yes");
  return 0;
}
