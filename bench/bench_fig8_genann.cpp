// Fig 8 — execution time of Genann training inside the Wasm sandbox for
// dataset sizes 100 kB .. 1 MB. WAMR setting: dataset poked straight into
// guest memory (the paper reads it from a normal-world file); WaTZ setting:
// dataset provisioned through the remote-attestation channel. Paper: time
// grows linearly with dataset size; WaTZ ~1.4% *faster* than WAMR (i.e. the
// two are equal within noise).
#include "bench/harness.hpp"
#include "ann/dataset.hpp"
#include "ann/guest.hpp"
#include "core/verifier_host.hpp"
#include "crypto/fortuna.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fig8-vendor"));
  auto board = bench::boot_device(fabric, vendor, "board", 0x81);

  crypto::Fortuna rng(to_bytes("fig8-rng"));
  core::VerifierHost verifier(*board, rng);
  verifier.listen(4433).check();

  const Bytes attested_module =
      ann::attested_training_module("board", verifier.identity());
  verifier.verifier().endorse_device(board->attestation_service().public_key());
  verifier.verifier().add_reference_measurement(crypto::sha256(attested_module));

  Bytes secret;
  verifier.verifier().set_secret_provider(
      [&secret](const crypto::Sha256Digest&) { return secret; });

  static const wasm::ImportResolver kNoImports;
  const Bytes plain_module = ann::training_module();

  const int kIters = 3;  // training epochs per run
  const auto base = ann::make_iris_like(150);

  std::printf("=== Fig 8: Genann training time vs dataset size ===\n");
  std::printf("%8s | %12s %12s | %10s\n", "dataset", "WAMR s", "WaTZ s", "WaTZ/WAMR");

  double ratio_sum = 0;
  int rows = 0;
  for (int step = 1; step <= 10; ++step) {
    const std::size_t target = static_cast<std::size_t>(step) * 100 * 1024;
    const Bytes wire = ann::encode_dataset(ann::replicate_to_size(base, target));
    secret = wire;

    // WAMR: fresh instance, dataset written into memory, train. A zero-
    // epoch control run isolates the pure training time (the same
    // subtraction the WaTZ side applies to remove the RA provisioning).
    auto ree = bench::instantiate_ree(plain_module, kNoImports);
    ree->memory()->copy_in(ann::GuestLayout::kDatasetPtr, wire).check();
    const std::uint64_t wamr_total_ns = bench::time_ns([&] {
      const int correct = bench::invoke_i32(
          *ree, "train_at",
          {wasm::Value::from_i32(ann::GuestLayout::kDatasetPtr),
           wasm::Value::from_i32(kIters)});
      if (correct <= 0) throw Error("WAMR training produced no classifications");
    });
    const std::uint64_t wamr_eval_ns = bench::time_ns([&] {
      (void)bench::invoke_i32(*ree, "train_at",
                              {wasm::Value::from_i32(ann::GuestLayout::kDatasetPtr),
                               wasm::Value::from_i32(0)});
    });
    const std::uint64_t wamr_ns =
        wamr_total_ns > wamr_eval_ns ? wamr_total_ns - wamr_eval_ns : wamr_total_ns;

    // WaTZ: launch attested module; it fetches the dataset over RA and
    // trains. The paper's figure reports the training phase; the RA cost
    // is Table IV's, so we time attest+train and subtract the measured
    // provisioning time via a second run that only attests (iters=0).
    core::AppConfig config;
    config.heap_bytes = 17 << 20;  // paper: 17 MB for the Genann attester
    const std::vector<wasm::Value> train_args = {
        wasm::Value::from_i32(5),  // host_len ("board")
        wasm::Value::from_i32(4433), wasm::Value::from_i32(kIters)};
    std::int64_t watz_correct = 0;
    std::uint64_t watz_total_ns = 0;
    {
      auto app = board->runtime().launch(attested_module, config);
      app.ok() ? void() : throw Error(app.error());
      watz_total_ns = bench::time_ns([&] {
        auto r = (*app)->invoke("attest_and_train", train_args);
        r.ok() ? void() : throw Error(r.error());
        watz_correct = r->front().i32();
        if (watz_correct < 0) throw Error("WaTZ attestation failed");
      });
    }  // release the 17 MB secure-heap reservation before the control run
    std::uint64_t ra_ns = 0;
    {
      auto app0 = board->runtime().launch(attested_module, config);
      app0.ok() ? void() : throw Error(app0.error());
      const std::vector<wasm::Value> attest_only = {
          wasm::Value::from_i32(5), wasm::Value::from_i32(4433), wasm::Value::from_i32(0)};
      ra_ns =
          bench::time_ns([&] { (void)(*app0)->invoke("attest_and_train", attest_only); });
    }
    const std::uint64_t watz_ns = watz_total_ns > ra_ns ? watz_total_ns - ra_ns : 0;

    const double ratio = static_cast<double>(watz_ns) / static_cast<double>(wamr_ns);
    std::printf("%6dkB | %12.3f %12.3f | %10.4f\n", step * 100,
                static_cast<double>(wamr_ns) / 1e9, static_cast<double>(watz_ns) / 1e9,
                ratio);
    ratio_sum += ratio;
    ++rows;
  }
  std::printf("\naverage WaTZ/WAMR training-time ratio: %.4f (paper: ~0.986, i.e. "
              "equal within noise)\n",
              ratio_sum / rows);
  return 0;
}
