// A fleet scenario: one verifier provisions a per-device configuration
// secret to many IoT boards, releasing it only to endorsed devices that
// run the approved application — and rejecting a board whose secure boot
// was compromised (tampered trusted-OS image).
//
//   $ ./examples/example_device_fleet
#include <cstdio>

#include "core/guest_builder.hpp"
#include "core/verifier_host.hpp"
#include "crypto/fortuna.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fleet-vendor"));

  // Verifier board.
  core::DeviceConfig vcfg;
  vcfg.hostname = "control";
  vcfg.otpmk.fill(0xC0);
  vcfg.latency.enabled = false;
  auto control = core::Device::boot(fabric, vendor, vcfg);
  crypto::Fortuna rng(to_bytes("fleet-rng"));
  core::VerifierHost verifier(**control, rng);
  verifier.listen(4433).check();

  const Bytes app = core::build_attester_app(verifier.identity(), "control", 4433);
  verifier.verifier().add_reference_measurement(crypto::sha256(app));
  verifier.verifier().set_secret_provider([](const crypto::Sha256Digest&) {
    return to_bytes("device-config-v7: mqtt://broker.internal");
  });

  // Boot a small fleet; endorse only the first three.
  std::printf("provisioning a fleet of 4 devices (3 endorsed, 1 unknown):\n");
  for (int i = 0; i < 4; ++i) {
    core::DeviceConfig cfg;
    cfg.hostname = "node-" + std::to_string(i);
    cfg.otpmk.fill(static_cast<std::uint8_t>(0x10 + i));
    cfg.latency.enabled = false;
    auto node = core::Device::boot(fabric, vendor, cfg);
    if (!node.ok()) {
      std::fprintf(stderr, "  %s: boot failed\n", cfg.hostname.c_str());
      continue;
    }
    const bool endorsed = i < 3;
    if (endorsed)
      verifier.verifier().endorse_device((*node)->attestation_service().public_key());

    core::AppConfig app_cfg;
    app_cfg.heap_bytes = 4 << 20;
    auto loaded = (*node)->runtime().launch(app, app_cfg);
    auto r = (*loaded)->invoke("attest", {});
    const int rc = r.ok() ? r->front().i32() : -999;
    std::printf("  %-7s endorsed=%-3s -> %s (rc=%d)\n", cfg.hostname.c_str(),
                endorsed ? "yes" : "no",
                rc > 0 ? "received config" : "REFUSED", rc);
  }

  // A compromised board: its trusted-OS image was modified, so secure boot
  // aborts and the device never comes up (the chain-of-trust property).
  auto chain = vendor.make_boot_chain();
  chain[2].payload.push_back(0xEE);  // tampered OP-TEE image
  hw::EfuseBank fuses;
  (void)fuses.program_digest(crypto::sha256(vendor.key.pub.encode_uncompressed()));
  std::array<std::uint8_t, 32> otpmk{};
  otpmk.fill(0x66);
  const hw::Caam caam(otpmk);
  auto evil = optee::TrustedOs::boot(caam, fuses, vendor.key.pub, chain,
                                     hw::LatencyModel::disabled());
  std::printf("  tampered-firmware board: %s\n",
              evil.ok() ? "BOOTED (unexpected!)" : ("refused to boot: " + evil.error()).c_str());
  return 0;
}
