// A fleet scenario, served through the attested execution gateway: a small
// IoT fleet is enrolled behind the gateway, tenants attach (one RA
// handshake per device, then never again), load a Wasm module once and
// invoke it many times -- dispatched least-loaded across the boards, with
// warm module-cache launches after the first touch of each device. The
// tenant drives the whole session through the async client API: attach
// and module load ride future-returning calls, several client threads
// invoke concurrently (each device's worker executes in parallel behind
// the admission layer), and a batch of readings crosses the wire as ONE
// INVOKE_BATCH exchange, its results delivered through a completion
// callback on the client's drain thread. A board whose secure boot was
// compromised (tampered trusted-OS image) never comes up, so it can
// never join the fleet.
//
//   $ ./examples/example_device_fleet
#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "gateway/gateway.hpp"
#include "wasm/builder.hpp"

namespace {

using namespace watz;

/// Telemetry-style guest: score(reading) -> reading * 3 + 1.
Bytes telemetry_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).i32_const(3).op(wasm::kI32Mul).i32_const(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("score", f);
  return b.build();
}

}  // namespace

int main() {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fleet-vendor"));

  // The gateway: the fleet's single front door. Tracing is sampled on
  // every invocation here (trace_sample_n = 1) and the slow-invoke log
  // threshold is 1 ns, so every lane lands in the log with its per-stage
  // breakdown — a real deployment would sample 1-in-N and set a real
  // threshold.
  gateway::GatewayConfig config;
  config.trace_sample_n = 1;
  config.slow_invoke_threshold_ns = 1;
  gateway::Gateway gw(fabric, config, to_bytes("fleet-gateway-identity"));
  gw.start().check();

  std::printf("enrolling a fleet of 3 devices behind the gateway:\n");
  std::vector<std::unique_ptr<core::Device>> fleet;
  for (int i = 0; i < 3; ++i) {
    core::DeviceConfig cfg;
    cfg.hostname = "node-" + std::to_string(i);
    cfg.otpmk.fill(static_cast<std::uint8_t>(0x10 + i));
    cfg.latency.enabled = false;
    auto node = core::Device::boot(fabric, vendor, cfg);
    if (!node.ok()) {
      std::fprintf(stderr, "  %s: boot failed: %s\n", cfg.hostname.c_str(),
                   node.error().c_str());
      continue;
    }
    gw.add_device(**node).check();
    std::printf("  %s enrolled (attestation key endorsed, platform claim "
                "registered)\n",
                cfg.hostname.c_str());
    fleet.push_back(std::move(*node));
  }

  // A tenant attaches: the whole fleet proves itself once, up front. The
  // async API returns a future immediately — the tenant could prepare its
  // workload while the RA handshakes run — and the module load chains off
  // it the same way.
  gateway::GatewayClient client(fabric);
  client.connect(config.hostname, config.port).check();
  auto session = client.attach_async("tenant-telemetry").get();
  if (!session.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("\ntenant attached: session %llu, %u devices attested "
              "(%u RA exchanges)\n",
              static_cast<unsigned long long>(session->session_id),
              session->devices_attested, session->ra_exchanges);

  const Bytes app = telemetry_app();
  auto load = client.load_async(session->session_id, app).get();
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.error().c_str());
    return 1;
  }
  std::printf("module registered: %s\n", to_hex(load->measurement).c_str());

  const auto score_request = [&](int reading) {
    gateway::InvokeRequest req;
    req.session_id = session->session_id;
    req.measurement = load->measurement;
    req.entry = "score";
    req.args = {wasm::Value::from_i32(reading)};
    req.heap_bytes = 1 << 20;
    return req;
  };

  // Invocations ride the session: no further attestation, and each device
  // pays the Loading phase only on its first touch. Three tenant threads
  // (one GatewayClient each) drive the fleet concurrently -- every
  // device's worker runs their invocations in parallel.
  std::printf("\n3 client threads dispatching 9 invocations across the fleet:\n");
  std::mutex print_mu;
  std::vector<std::thread> tenants;
  for (int t = 0; t < 3; ++t) {
    tenants.emplace_back([&, t] {
      gateway::GatewayClient worker_client(fabric);
      if (!worker_client.connect(config.hostname, config.port).ok()) return;
      for (int i = 0; i < 3; ++i) {
        const int reading = 3 * t + i;
        auto r = worker_client.invoke(score_request(reading));
        std::lock_guard<std::mutex> lock(print_mu);
        if (!r.ok()) {
          std::fprintf(stderr, "  invoke failed: %s\n", r.error().c_str());
          continue;
        }
        std::printf("  [thread %d] score(%d) = %-3d on %-7s %-21s "
                    "ra-exchanges=%u\n",
                    t, reading, r->results.front().i32(), r->device.c_str(),
                    r->pool_hit          ? "[pool hit]"
                    : r->module_cache_hit ? "[module-cache hit]"
                                          : "[cold: full pipeline]",
                    r->ra_exchanges);
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();

  // The batched path: a window of readings crosses the wire as ONE
  // INVOKE_BATCH exchange; the gateway fans the lanes across the fleet's
  // run queues in one admission pass and the per-reading results come
  // back through a completion callback on the client's drain thread —
  // this thread never blocks on the gateway at all.
  std::vector<gateway::InvokeRequest> batch;
  for (int reading = 9; reading < 15; ++reading)
    batch.push_back(score_request(reading));
  std::mutex batch_mu;
  std::condition_variable batch_cv;
  std::size_t batch_done = 0;
  std::vector<std::string> batch_lines(batch.size());
  Status issued = client.invoke_batch_async(
      batch, [&](std::size_t index, Result<gateway::InvokeResponse> result) {
        char line[128];
        if (result.ok())
          std::snprintf(line, sizeof line, "  score(%zu) = %-3d on %s", index + 9,
                        result->results.front().i32(), result->device.c_str());
        else
          std::snprintf(line, sizeof line, "  batch[%zu] failed: %s", index,
                        result.error().c_str());
        std::lock_guard<std::mutex> lock(batch_mu);
        batch_lines[index] = line;
        ++batch_done;
        batch_cv.notify_one();
      });
  if (!issued.ok()) {
    std::fprintf(stderr, "batch failed: %s\n", issued.error().c_str());
    return 1;
  }
  std::printf("\nbatch of %zu fanned out via one INVOKE_BATCH exchange:\n",
              batch.size());
  {
    std::unique_lock<std::mutex> lock(batch_mu);
    batch_cv.wait(lock, [&] { return batch_done == batch.size(); });
  }
  for (const std::string& line : batch_lines) std::printf("%s\n", line.c_str());

  // detail=true additionally pulls the slow-invoke log over the wire.
  auto stats = client.stats(session->session_id, /*detail=*/true);
  if (stats.ok()) {
    std::printf("\ngateway stats: %llu invocations, %llu handshakes run, "
                "%llu reused\n",
                static_cast<unsigned long long>(stats->invocations),
                static_cast<unsigned long long>(stats->handshakes_run),
                static_cast<unsigned long long>(stats->handshakes_reused));
    for (const gateway::DeviceStats& d : stats->devices)
      std::printf("  %-7s invocations=%llu cache: %llu hit / %llu miss, "
                  "pool hits=%llu, queue p99 <= %llu ns\n",
                  d.hostname.c_str(),
                  static_cast<unsigned long long>(d.invocations),
                  static_cast<unsigned long long>(d.cache_hits),
                  static_cast<unsigned long long>(d.cache_misses),
                  static_cast<unsigned long long>(d.pool_hits),
                  static_cast<unsigned long long>(d.queue_delay_p99_ns));

    // Per-stage latency breakdown of the invoke pipeline, straight from
    // the gateway's metrics registry (histogram percentiles are log2
    // bucket upper bounds). The same numbers travel the wire as
    // GatewayStats::stage_queue / stage_exec / stage_tee_entry / stage_ra.
    std::printf("\nper-stage latency (from the gateway's obs registry):\n");
    for (const obs::MetricSnapshot& m : gw.registry().snapshot()) {
      if (m.kind != obs::MetricKind::Histogram) continue;
      if (m.name.rfind("stage.", 0) != 0) continue;
      std::printf("  %-16s %6llu samples   p50 <= %-9llu p90 <= %-9llu "
                  "p99 <= %llu ns\n",
                  m.name.c_str(), static_cast<unsigned long long>(m.value),
                  static_cast<unsigned long long>(m.p50),
                  static_cast<unsigned long long>(m.p90),
                  static_cast<unsigned long long>(m.p99));
    }

    // The slow-invoke log: every invocation above the threshold (here:
    // all of them), newest last, with its stage breakdown and trace id.
    std::printf("\nslow-invoke log (%zu entries, threshold %llu ns):\n",
                stats->slow_invokes.size(),
                static_cast<unsigned long long>(config.slow_invoke_threshold_ns));
    const std::size_t show = std::min<std::size_t>(stats->slow_invokes.size(), 3);
    for (std::size_t i = stats->slow_invokes.size() - show;
         i < stats->slow_invokes.size(); ++i) {
      const gateway::SlowInvoke& s = stats->slow_invokes[i];
      std::printf("  trace %016llx %s/%s total=%llu ns (queue=%llu prepare=%llu "
                  "tee=%llu exec=%llu ra=%llu)\n",
                  static_cast<unsigned long long>(s.trace_id), s.device.c_str(),
                  s.entry.c_str(), static_cast<unsigned long long>(s.total_ns),
                  static_cast<unsigned long long>(s.queue_ns),
                  static_cast<unsigned long long>(s.prepare_ns),
                  static_cast<unsigned long long>(s.tee_ns),
                  static_cast<unsigned long long>(s.exec_ns),
                  static_cast<unsigned long long>(s.ra_ns));
    }
  }

  // The span plane: drain the sampled spans and count per-lane flame-graph
  // rows (the bench exports the same records as Chrome trace_event JSON).
  const auto spans = gw.span_sink().drain();
  std::printf("\nspan sink drained %zu stage spans across the session "
              "(0 dropped: %s)\n",
              spans.size(), gw.span_sink().dropped() == 0 ? "yes" : "no");

  // A compromised board: its trusted-OS image was modified, so secure boot
  // aborts and the device never comes up -- it can never enrol.
  auto chain = vendor.make_boot_chain();
  chain[2].payload.push_back(0xEE);  // tampered OP-TEE image
  hw::EfuseBank fuses;
  (void)fuses.program_digest(crypto::sha256(vendor.key.pub.encode_uncompressed()));
  std::array<std::uint8_t, 32> otpmk{};
  otpmk.fill(0x66);
  const hw::Caam caam(otpmk);
  auto evil = optee::TrustedOs::boot(caam, fuses, vendor.key.pub, chain,
                                     hw::LatencyModel::disabled());
  std::printf("\ntampered-firmware board: %s\n",
              evil.ok() ? "BOOTED (unexpected!)"
                        : ("refused to boot: " + evil.error()).c_str());
  return 0;
}
