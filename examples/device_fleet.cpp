// A fleet scenario, served through the attested execution gateway: a small
// IoT fleet is enrolled behind the gateway, tenants attach (one RA
// handshake per device, then never again), load a Wasm module once and
// invoke it many times -- dispatched least-loaded across the boards, with
// warm module-cache launches after the first touch of each device. A board
// whose secure boot was compromised (tampered trusted-OS image) never
// comes up, so it can never join the fleet.
//
//   $ ./examples/example_device_fleet
#include <cstdio>

#include "gateway/gateway.hpp"
#include "wasm/builder.hpp"

namespace {

using namespace watz;

/// Telemetry-style guest: score(reading) -> reading * 3 + 1.
Bytes telemetry_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).i32_const(3).op(wasm::kI32Mul).i32_const(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("score", f);
  return b.build();
}

}  // namespace

int main() {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fleet-vendor"));

  // The gateway: the fleet's single front door.
  gateway::GatewayConfig config;
  gateway::Gateway gw(fabric, config, to_bytes("fleet-gateway-identity"));
  gw.start().check();

  std::printf("enrolling a fleet of 3 devices behind the gateway:\n");
  std::vector<std::unique_ptr<core::Device>> fleet;
  for (int i = 0; i < 3; ++i) {
    core::DeviceConfig cfg;
    cfg.hostname = "node-" + std::to_string(i);
    cfg.otpmk.fill(static_cast<std::uint8_t>(0x10 + i));
    cfg.latency.enabled = false;
    auto node = core::Device::boot(fabric, vendor, cfg);
    if (!node.ok()) {
      std::fprintf(stderr, "  %s: boot failed: %s\n", cfg.hostname.c_str(),
                   node.error().c_str());
      continue;
    }
    gw.add_device(**node).check();
    std::printf("  %s enrolled (attestation key endorsed, platform claim "
                "registered)\n",
                cfg.hostname.c_str());
    fleet.push_back(std::move(*node));
  }

  // A tenant attaches: the whole fleet proves itself once, up front.
  gateway::GatewayClient client(fabric);
  client.connect(config.hostname, config.port).check();
  auto session = client.attach("tenant-telemetry");
  if (!session.ok()) {
    std::fprintf(stderr, "attach failed: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("\ntenant attached: session %llu, %u devices attested "
              "(%u RA exchanges)\n",
              static_cast<unsigned long long>(session->session_id),
              session->devices_attested, session->ra_exchanges);

  const Bytes app = telemetry_app();
  auto load = client.load_module(session->session_id, app);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.error().c_str());
    return 1;
  }
  std::printf("module registered: %s\n", to_hex(load->measurement).c_str());

  // Invocations ride the session: no further attestation, and each device
  // pays the Loading phase only on its first touch.
  std::printf("\ndispatching 9 invocations across the fleet:\n");
  for (int reading = 0; reading < 9; ++reading) {
    gateway::InvokeRequest req;
    req.session_id = session->session_id;
    req.measurement = load->measurement;
    req.entry = "score";
    req.args = {wasm::Value::from_i32(reading)};
    req.heap_bytes = 1 << 20;
    auto r = client.invoke(req);
    if (!r.ok()) {
      std::fprintf(stderr, "  invoke failed: %s\n", r.error().c_str());
      return 1;
    }
    std::printf("  score(%d) = %-3d on %-7s %-21s ra-exchanges=%u\n", reading,
                r->results.front().i32(), r->device.c_str(),
                r->pool_hit          ? "[pool hit]"
                : r->module_cache_hit ? "[module-cache hit]"
                                      : "[cold: full pipeline]",
                r->ra_exchanges);
  }

  auto stats = client.stats(session->session_id);
  if (stats.ok()) {
    std::printf("\ngateway stats: %llu invocations, %llu handshakes run, "
                "%llu reused\n",
                static_cast<unsigned long long>(stats->invocations),
                static_cast<unsigned long long>(stats->handshakes_run),
                static_cast<unsigned long long>(stats->handshakes_reused));
    for (const gateway::DeviceStats& d : stats->devices)
      std::printf("  %-7s invocations=%llu cache: %llu hit / %llu miss, "
                  "pool hits=%llu\n",
                  d.hostname.c_str(),
                  static_cast<unsigned long long>(d.invocations),
                  static_cast<unsigned long long>(d.cache_hits),
                  static_cast<unsigned long long>(d.cache_misses),
                  static_cast<unsigned long long>(d.pool_hits));
  }

  // A compromised board: its trusted-OS image was modified, so secure boot
  // aborts and the device never comes up -- it can never enrol.
  auto chain = vendor.make_boot_chain();
  chain[2].payload.push_back(0xEE);  // tampered OP-TEE image
  hw::EfuseBank fuses;
  (void)fuses.program_digest(crypto::sha256(vendor.key.pub.encode_uncompressed()));
  std::array<std::uint8_t, 32> otpmk{};
  otpmk.fill(0x66);
  const hw::Caam caam(otpmk);
  auto evil = optee::TrustedOs::boot(caam, fuses, vendor.key.pub, chain,
                                     hw::LatencyModel::disabled());
  std::printf("\ntampered-firmware board: %s\n",
              evil.ok() ? "BOOTED (unexpected!)"
                        : ("refused to boot: " + evil.error()).c_str());
  return 0;
}
