// An embeddable SQL database running inside the TEE (the paper's SQLite
// scenario, SS VI-D): minisql executes in the secure world, queried from
// the normal world across the SMC boundary.
//
//   $ ./examples/example_secure_database
#include <cstdio>

#include "core/device.hpp"
#include "db/database.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("db-vendor"));
  core::DeviceConfig config;
  config.hostname = "db-board";
  config.otpmk.fill(0xDB);
  // Keep the calibrated world-switch cost: this example shows its price.
  auto device = core::Device::boot(fabric, vendor, config);
  if (!device.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", device.error().c_str());
    return 1;
  }

  // The database lives in the secure world; every statement crosses the
  // boundary (and pays the measured 86+20 us, Fig 3b).
  db::Database secure_db;
  auto query = [&](const std::string& sql) -> db::ResultSet {
    auto result = (*device)->monitor().smc_call(
        [&]() -> Result<db::ResultSet> { return secure_db.execute(sql); });
    if (!result.ok()) {
      std::fprintf(stderr, "SQL error: %s\n", result.error().c_str());
      std::exit(1);
    }
    return *result;
  };

  query("CREATE TABLE readings (sensor INTEGER, ts INTEGER, value REAL)");
  query("CREATE INDEX idx_sensor ON readings (sensor)");

  // Ingest "sensor" data.
  for (int i = 0; i < 500; ++i) {
    query("INSERT INTO readings VALUES (" + std::to_string(i % 8) + ", " +
          std::to_string(1000 + i) + ", " + std::to_string(20.0 + (i % 50) * 0.1) + ")");
  }

  // Query across the boundary.
  const auto count = query("SELECT COUNT(*) FROM readings WHERE sensor = 3");
  std::printf("sensor 3 readings : %lld\n",
              static_cast<long long>(count.rows[0][0].as_int()));
  const auto avg = query("SELECT AVG(value) FROM readings WHERE sensor = 3");
  std::printf("sensor 3 average  : %.2f\n", avg.rows[0][0].as_real());
  const auto top = query(
      "SELECT ts, value FROM readings WHERE sensor = 3 ORDER BY value DESC LIMIT 3");
  for (const auto& row : top.rows)
    std::printf("  top reading: ts=%lld value=%.2f\n",
                static_cast<long long>(row[0].as_int()), row[1].as_real());

  std::printf("world transitions paid: %llu (one per statement)\n",
              static_cast<unsigned long long>((*device)->monitor().enter_count()));
  std::printf("index lookups served  : %llu, rows scanned: %llu\n",
              static_cast<unsigned long long>(secure_db.stats().index_lookups),
              static_cast<unsigned long long>(secure_db.stats().rows_scanned));
  return 0;
}
