// Attested machine learning at the edge (the paper's SS VI-F scenario):
// an IoT board proves — via remote attestation — that it runs an approved
// training application inside WaTZ; only then does the data owner release
// the (confidential) training set, which never leaves the secure channel.
//
//   $ ./examples/example_attested_ml
#include <cstdio>

#include "ann/dataset.hpp"
#include "ann/guest.hpp"
#include "core/verifier_host.hpp"
#include "crypto/fortuna.hpp"

int main() {
  using namespace watz;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("ml-vendor"));

  // Two boards: the edge device (attester) and the data owner's (verifier).
  core::DeviceConfig edge_cfg;
  edge_cfg.hostname = "edge";
  edge_cfg.otpmk.fill(0xE1);
  edge_cfg.latency.enabled = false;
  auto edge = core::Device::boot(fabric, vendor, edge_cfg);
  core::DeviceConfig owner_cfg;
  owner_cfg.hostname = "owner";
  owner_cfg.otpmk.fill(0x0A);
  owner_cfg.latency.enabled = false;
  auto owner = core::Device::boot(fabric, vendor, owner_cfg);
  if (!edge.ok() || !owner.ok()) {
    std::fprintf(stderr, "boot failed\n");
    return 1;
  }

  // The data owner's verifier service.
  crypto::Fortuna rng(to_bytes("ml-rng"));
  core::VerifierHost verifier(**owner, rng);
  verifier.listen(4433).check();

  // The training application, with the owner's identity baked in (and
  // therefore covered by the code measurement).
  const Bytes app = ann::attested_training_module("owner", verifier.identity());

  // Owner-side policy: endorse the edge device, approve the app hash, and
  // prepare the confidential dataset.
  verifier.verifier().endorse_device((*edge)->attestation_service().public_key());
  verifier.verifier().add_reference_measurement(crypto::sha256(app));
  const auto dataset = ann::make_iris_like(150);
  const Bytes wire = ann::encode_dataset(dataset);
  verifier.verifier().set_secret_provider([&wire](const crypto::Sha256Digest& claim) {
    std::printf("[owner] releasing %zu-byte dataset to measured app %s...\n",
                wire.size(), to_hex(claim).substr(0, 16).c_str());
    return wire;
  });

  // Edge side: launch, attest, train — all inside the sandbox.
  core::AppConfig config;
  config.heap_bytes = 17 << 20;
  auto loaded = (*edge)->runtime().launch(app, config);
  if (!loaded.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", loaded.error().c_str());
    return 1;
  }
  std::printf("[edge] app measurement: %s\n", to_hex((*loaded)->measurement()).c_str());

  const std::vector<wasm::Value> args = {
      wasm::Value::from_i32(5),     // strlen("owner")
      wasm::Value::from_i32(4433),  // verifier port
      wasm::Value::from_i32(60),    // training epochs
  };
  auto correct = (*loaded)->invoke("attest_and_train", args);
  if (!correct.ok()) {
    std::fprintf(stderr, "attest_and_train trapped: %s\n", correct.error().c_str());
    return 1;
  }
  if (correct->front().i32() < 0) {
    std::fprintf(stderr, "attestation refused (code %d)\n", correct->front().i32());
    return 1;
  }
  std::printf("[edge] trained in-sandbox; %d/150 records classified correctly\n",
              correct->front().i32());

  // Negative control: a device the owner never endorsed gets nothing.
  core::DeviceConfig rogue_cfg;
  rogue_cfg.hostname = "rogue";
  rogue_cfg.otpmk.fill(0xBA);
  rogue_cfg.latency.enabled = false;
  auto rogue = core::Device::boot(fabric, vendor, rogue_cfg);
  auto rogue_app = (*rogue)->runtime().launch(app, config);
  auto refused = (*rogue_app)->invoke("attest_and_train", args);
  std::printf("[rogue] unendorsed device result: %d (negative = refused, as intended)\n",
              refused.ok() ? refused->front().i32() : -1);
  return 0;
}
