// Quickstart: boot a simulated TrustZone board, compile a C program to
// WebAssembly with wcc, launch it in the WaTZ trusted runtime, and call
// into the sandbox.
//
//   $ ./examples/example_quickstart
#include <cstdio>

#include "core/device.hpp"
#include "wcc/compiler.hpp"

int main() {
  using namespace watz;

  // 1. A network fabric + vendor identity (signs the boot chain).
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("quickstart-vendor"));

  // 2. Manufacture and boot a device: eFuses burnt, secure boot verified,
  //    OP-TEE (with the WaTZ extensions) up, attestation service loaded.
  core::DeviceConfig config;
  config.hostname = "dev-board";
  config.otpmk.fill(0x42);       // the device-unique hardware root of trust
  config.latency.enabled = false;  // no simulated world-switch cost for the demo
  auto device = core::Device::boot(fabric, vendor, config);
  if (!device.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", device.error().c_str());
    return 1;
  }
  std::printf("booted %s; attestation key: %s...\n", (*device)->hostname().c_str(),
              to_hex((*device)->attestation_service().public_key().x).substr(0, 16).c_str());

  // 3. Compile a guest application from C with wcc.
  auto wasm_binary = wcc::compile(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
    double mean_of_squares(int n) {
      double acc = 0.0;
      for (int i = 1; i <= n; i++) acc += (double)i * i;
      return acc / n;
    }
  )");
  if (!wasm_binary.ok()) {
    std::fprintf(stderr, "wcc: %s\n", wasm_binary.error().c_str());
    return 1;
  }

  // 4. Launch it in the secure world: the binary crosses through shared
  //    memory, is measured (SHA-256 -> the attestation claim) and AOT-
  //    translated inside the TEE.
  auto app = (*device)->runtime().launch(*wasm_binary, core::AppConfig{});
  if (!app.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", app.error().c_str());
    return 1;
  }
  std::printf("application measured: %s\n", to_hex((*app)->measurement()).c_str());

  // 5. Invoke exported functions inside the sandbox.
  const wasm::Value n20 = wasm::Value::from_i32(20);
  auto fib = (*app)->invoke("fib", std::span<const wasm::Value>(&n20, 1));
  auto mean = (*app)->invoke("mean_of_squares", std::span<const wasm::Value>(&n20, 1));
  if (!fib.ok() || !mean.ok()) {
    std::fprintf(stderr, "invoke failed\n");
    return 1;
  }
  std::printf("fib(20)              = %d\n", fib->front().i32());
  std::printf("mean_of_squares(20)  = %.2f\n", mean->front().f64());
  std::printf("startup: %.2f ms (loading %.0f%%)\n",
              static_cast<double>((*app)->startup().total_ns()) / 1e6,
              100.0 * (*app)->startup().loading_ns /
                  static_cast<double>((*app)->startup().total_ns()));
  return 0;
}
